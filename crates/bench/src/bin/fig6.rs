//! Figure 6: throughput vs number of parallel engines, single node vs
//! distributed over the 10-node cluster (d = 250, throttle 0.5 s,
//! N = 5000 — the paper's §III-D settings).
//!
//! The paper's findings this must reproduce in *shape*:
//!   * distributed placement rises with engine count, peaks around 20
//!     engines (2 per node), and **degrades at 30**;
//!   * single-node placement is flat-ish — fusion helps a single engine,
//!     but extra engines on one quad-core node buy little;
//!   * a single distributed engine *underperforms* a single fused engine
//!     (cross-node messaging overhead).
//!
//! The cluster simulator is calibrated in two steps (see `spca-cluster`
//! docs): the absolute anchor comes from the paper's published operating
//! points, the dimension-scaling shape from *real measurements* of this
//! repo's PCA update, taken here before the sweep.
//!
//! Output: `target/figures/fig6_scaling.csv`.

use spca_bench::{calibrate_dimension_curve, print_table, write_csv};
use spca_cluster::{ClusterSim, ClusterSpec, CostModel, Placement, SimConfig};

const DIM: usize = 250;
const THREADS: &[usize] = &[1, 2, 5, 10, 15, 20, 25, 30];

fn main() {
    println!("Fig. 6 reproduction: tuples/s vs parallel engines (d = {DIM})");
    println!("calibrating per-tuple update cost on this machine ...");
    let measured = calibrate_dimension_curve(&[125, 250, 500, 1000], 5);
    for (d, t) in &measured {
        println!("  d = {d:>5}: {:.1} µs/tuple (this machine)", t * 1e6);
    }
    let cost = CostModel::paper().with_measurements(measured);
    let spec = ClusterSpec::paper();
    let cfg = SimConfig {
        dim: DIM,
        ..Default::default()
    };

    let mut rows = Vec::new();
    for &n in THREADS {
        let distributed = ClusterSim::new(
            spec.clone(),
            cost.clone(),
            Placement::round_robin(n, spec.n_nodes),
            cfg.clone(),
        )
        .run();
        let single = ClusterSim::new(
            spec.clone(),
            cost.clone(),
            Placement::single_node(n),
            cfg.clone(),
        )
        .run();
        rows.push(vec![n as f64, distributed.throughput, single.throughput]);
    }

    let path = write_csv(
        "fig6_scaling.csv",
        &["threads", "distributed_tps", "single_tps"],
        &rows,
    );
    println!("\nwrote {}", path.display());
    print_table(
        "Fig. 6: tuples/second (simulated 10-node cluster)",
        &["threads", "distributed", "single"],
        &rows,
    );

    // Shape checks against the paper's claims.
    let tp =
        |n: usize, col: usize| rows.iter().find(|r| r[0] == n as f64).expect("row present")[col];
    let d1 = tp(1, 1);
    let d10 = tp(10, 1);
    let d20 = tp(20, 1);
    let d30 = tp(30, 1);
    let s1 = tp(1, 2);
    let s4 = tp(2, 2).max(tp(5, 2));
    let s20 = tp(20, 2);

    assert!(
        s1 > d1,
        "fused single engine must beat a remote one: {s1} vs {d1}"
    );
    assert!(d10 > 2.0 * tp(5, 1) * 0.8, "distributed should scale 5→10");
    assert!(d20 > d10, "distributed should still gain 10→20");
    assert!(
        d30 < d20,
        "30 engines must degrade below 20 (interconnect saturation)"
    );
    assert!(s20 < s4 * 1.5, "single node must plateau, not scale");
    assert!(
        d20 > 2.5 * s20,
        "distributed peak must clearly beat single-node"
    );
    println!("\nshape check PASSED: rise to 2 engines/node, degradation at 30, flat single node.");
}
