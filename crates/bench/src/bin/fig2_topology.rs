//! Figure 2: the analysis dataflow graph.
//!
//! Fig. 2 is structural — "the analysis graph uses a threaded split
//! operator … distributes the inputs to match the processing capacity of
//! each PCA engine. The synchronization messages are also implemented in
//! the same framework." This binary builds the application graph for a
//! configurable engine count, prints its adjacency (the figure, as text),
//! and verifies the invariants the figure depicts: one split feeding every
//! engine, sync signals reaching every engine's control port through the
//! same framework, and the ring state edges of Fig. 3.

use spca_bench::figures_dir;
use spca_core::PcaConfig;
use spca_engine::{AppConfig, ParallelPcaApp, SyncStrategy};
use spca_streams::ops::GeneratorSource;
use spca_streams::PortKind;
use std::io::Write;

fn main() {
    let n = 4;
    let pca = PcaConfig::new(64, 4);
    let mut cfg = AppConfig::new(n, pca);
    cfg.sync = SyncStrategy::Ring;
    cfg.use_throttle = true; // the paper's controller → Throttle → engines path
    let source = Box::new(GeneratorSource::new(|_| Some((vec![0.0; 64], None))).with_max_tuples(1));
    let (g, _handles) = ParallelPcaApp::build(&cfg, source);

    println!("Fig. 2 reproduction: application dataflow graph ({n} engines, ring sync)\n");
    let mut lines = Vec::new();
    for (from, port, to, kind) in g.edge_list() {
        let k = match kind {
            PortKind::Data => "data",
            PortKind::Control => "ctrl",
        };
        lines.push(format!(
            "{:<18} --[{k}:{port}]--> {}",
            g.op_name(from),
            g.op_name(to)
        ));
    }
    lines.sort();
    for l in &lines {
        println!("  {l}");
    }
    let path = figures_dir().join("fig2_topology.txt");
    let mut f = std::fs::File::create(&path).expect("write topology");
    for l in &lines {
        writeln!(f, "{l}").expect("write line");
    }
    println!("\nwrote {}", path.display());

    // Structural assertions mirroring the figure.
    let edges = g.edge_list();
    let name = |id| g.op_name(id).to_string();
    // Split fans out to every engine on the data path.
    let split_fanout = edges
        .iter()
        .filter(|(f, _, t, k)| {
            name(*f) == "split" && name(*t).starts_with("pca-") && *k == PortKind::Data
        })
        .count();
    assert_eq!(split_fanout, n, "split must feed every engine");
    // Every engine receives control from a throttle (sync path in-framework).
    for i in 0..n {
        let has_ctrl = edges.iter().any(|(f, _, t, k)| {
            name(*f).starts_with("throttle-")
                && name(*t) == format!("pca-{i}")
                && *k == PortKind::Control
        });
        assert!(has_ctrl, "engine {i} missing throttled sync path");
    }
    // Ring of Fig. 3: pca-i → pca-(i+1 mod n).
    for i in 0..n {
        let succ = format!("pca-{}", (i + 1) % n);
        let has_ring = edges.iter().any(|(f, _, t, k)| {
            name(*f) == format!("pca-{i}") && name(*t) == succ && *k == PortKind::Control
        });
        assert!(has_ring, "ring edge pca-{i} → {succ} missing");
    }
    // Every engine reports to the monitor.
    let monitor_fanin = edges
        .iter()
        .filter(|(_, _, t, _)| name(*t) == "monitor")
        .count();
    assert_eq!(monitor_fanin, n, "every engine must report snapshots");

    println!(
        "\nstructure check PASSED: split fan-out, throttled sync, Fig. 3 ring, monitor fan-in."
    );
}
