//! Minimal JSON support for the recorded benchmark artifacts.
//!
//! The workspace deliberately carries no serialization dependency, so the
//! `BENCH_*.json` files are written and re-validated with this small
//! hand-rolled value type: enough JSON to round-trip the benchmark
//! reports, strict enough to reject malformed artifacts in CI.

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete JSON document; trailing garbage is an error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    fn write(&self, out: &mut String, indent: usize) {
        let pad = |out: &mut String, n: usize| {
            for _ in 0..n {
                out.push_str("  ");
            }
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 1e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => {
                out.push('"');
                for c in s.chars() {
                    match c {
                        '"' => out.push_str("\\\""),
                        '\\' => out.push_str("\\\\"),
                        '\n' => out.push_str("\\n"),
                        '\t' => out.push_str("\\t"),
                        '\r' => out.push_str("\\r"),
                        c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                        c => out.push(c),
                    }
                }
                out.push('"');
            }
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    pad(out, indent + 1);
                    item.write(out, indent + 1);
                    if i + 1 < items.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    pad(out, indent + 1);
                    Json::Str(k.clone()).write(out, indent + 1);
                    out.push_str(": ");
                    v.write(out, indent + 1);
                    if i + 1 < fields.len() {
                        out.push(',');
                    }
                    out.push('\n');
                }
                pad(out, indent);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.write(&mut s, 0);
        f.write_str(&s)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        self.skip_ws();
        match self.peek() {
            None => Err("unexpected end of input".to_string()),
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Json::Null)
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Json::Bool(true))
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Json::Bool(false))
                } else {
                    Err(format!("bad literal at byte {}", self.pos))
                }
            }
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Take the longest escape-free UTF-8 run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b't') => s.push('\t'),
                        Some(b'r') => s.push('\r'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            s.push(char::from_u32(code).ok_or("bad \\u code point")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// One row of the engine-transport benchmark grid: a (fusion, engine
/// count) cell measured at batch size 1 and at the batched default.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBenchRow {
    /// Cell label, e.g. `"unfused-2"`.
    pub config: String,
    /// Whether the whole graph ran in one PE.
    pub fused: bool,
    /// Number of parallel PCA engines.
    pub engines: usize,
    /// Median throughput with per-tuple transport (batch size 1).
    pub batch1_tuples_per_s: f64,
    /// Median throughput with frame transport (the default batch size).
    pub batched_tuples_per_s: f64,
    /// `batched / batch1`.
    pub speedup: f64,
}

/// The recorded engine-transport benchmark artifact (`BENCH_engine.json`).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineBenchReport {
    /// What was measured and how many samples per cell.
    pub benchmark: String,
    /// Machine / build caveats for reproducing the numbers.
    pub machine_note: String,
    /// Tuples pushed through the graph per run.
    pub tuples: u64,
    /// Observation dimensionality of the workload.
    pub dim: usize,
    /// Batch size used for the "batched" column.
    pub batch: usize,
    /// The acceptance target the grid was recorded against.
    pub target: String,
    /// Total operator restarts observed across every measured run. The
    /// recorded grid must be fault-free, so anything other than zero
    /// fails validation: a fault plan leaking into a benchmark run can
    /// never land as a committed artifact.
    pub restarts: u64,
    /// Total whole-PE restarts (operator-weighted, see
    /// `RunReport::total_pe_restarts`) across every measured run. Gated to
    /// zero exactly like `restarts`.
    pub pe_restarts: u64,
    /// One row per (fusion, engines) cell.
    pub results: Vec<EngineBenchRow>,
}

fn field<'a>(v: &'a Json, key: &str) -> Result<&'a Json, String> {
    v.get(key).ok_or_else(|| format!("missing field '{key}'"))
}

fn num_field(v: &Json, key: &str) -> Result<f64, String> {
    let n = field(v, key)?
        .as_f64()
        .ok_or_else(|| format!("field '{key}' is not a number"))?;
    if !n.is_finite() {
        return Err(format!("field '{key}' is not finite"));
    }
    Ok(n)
}

fn str_field(v: &Json, key: &str) -> Result<String, String> {
    Ok(field(v, key)?
        .as_str()
        .ok_or_else(|| format!("field '{key}' is not a string"))?
        .to_string())
}

impl EngineBenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("config".into(), Json::Str(self.config.clone())),
            ("fused".into(), Json::Bool(self.fused)),
            ("engines".into(), Json::Num(self.engines as f64)),
            (
                "batch1_tuples_per_s".into(),
                Json::Num(self.batch1_tuples_per_s),
            ),
            (
                "batched_tuples_per_s".into(),
                Json::Num(self.batched_tuples_per_s),
            ),
            ("speedup".into(), Json::Num(self.speedup)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let row = EngineBenchRow {
            config: str_field(v, "config")?,
            fused: field(v, "fused")?
                .as_bool()
                .ok_or("field 'fused' is not a bool")?,
            engines: num_field(v, "engines")? as usize,
            batch1_tuples_per_s: num_field(v, "batch1_tuples_per_s")?,
            batched_tuples_per_s: num_field(v, "batched_tuples_per_s")?,
            speedup: num_field(v, "speedup")?,
        };
        if row.engines == 0 {
            return Err(format!("{}: zero engines", row.config));
        }
        if row.batch1_tuples_per_s <= 0.0 || row.batched_tuples_per_s <= 0.0 {
            return Err(format!("{}: non-positive throughput", row.config));
        }
        let expect = row.batched_tuples_per_s / row.batch1_tuples_per_s;
        if (row.speedup - expect).abs() > 0.02 * expect {
            return Err(format!(
                "{}: speedup {} inconsistent with medians (expected {expect:.3})",
                row.config, row.speedup
            ));
        }
        Ok(row)
    }
}

impl EngineBenchReport {
    /// Serializes to the committed artifact layout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("machine_note".into(), Json::Str(self.machine_note.clone())),
            ("tuples".into(), Json::Num(self.tuples as f64)),
            ("dim".into(), Json::Num(self.dim as f64)),
            ("batch".into(), Json::Num(self.batch as f64)),
            ("target".into(), Json::Str(self.target.clone())),
            ("restarts".into(), Json::Num(self.restarts as f64)),
            ("pe_restarts".into(), Json::Num(self.pe_restarts as f64)),
            (
                "results".into(),
                Json::Arr(self.results.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// Parses and schema-checks an artifact. This is the CI gate: any
    /// missing field, wrong type, non-finite number, empty grid, or
    /// internally inconsistent speedup is an error.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        let results_json = field(v, "results")?
            .as_arr()
            .ok_or("field 'results' is not an array")?;
        if results_json.is_empty() {
            return Err("'results' is empty".to_string());
        }
        let results = results_json
            .iter()
            .map(EngineBenchRow::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let report = EngineBenchReport {
            benchmark: str_field(v, "benchmark")?,
            machine_note: str_field(v, "machine_note")?,
            tuples: num_field(v, "tuples")? as u64,
            dim: num_field(v, "dim")? as usize,
            batch: num_field(v, "batch")? as usize,
            target: str_field(v, "target")?,
            // Absent in artifacts recorded before fault injection existed.
            restarts: match v.get("restarts") {
                None => 0,
                Some(_) => num_field(v, "restarts")? as u64,
            },
            // Absent in artifacts recorded before PE-level supervision.
            pe_restarts: match v.get("pe_restarts") {
                None => 0,
                Some(_) => num_field(v, "pe_restarts")? as u64,
            },
            results,
        };
        if report.batch < 2 {
            return Err("'batch' must be ≥ 2 (the batched column)".to_string());
        }
        if report.tuples == 0 {
            return Err("'tuples' must be positive".to_string());
        }
        if report.restarts > 0 {
            return Err(format!(
                "'restarts' is {} — benchmark artifacts must be recorded fault-free",
                report.restarts
            ));
        }
        if report.pe_restarts > 0 {
            return Err(format!(
                "'pe_restarts' is {} — benchmark artifacts must be recorded fault-free",
                report.pe_restarts
            ));
        }
        Ok(report)
    }

    /// Round-trips a report through text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// One row of the kernel-dispatch benchmark: a (kernel, dimension) cell
/// timed under the scalar backend and under the dispatched backend.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBenchRow {
    /// Kernel name: `"dot"`, `"axpy"` or `"gemm"`.
    pub kernel: String,
    /// Problem dimension (vector length; GEMM row/column count).
    pub d: usize,
    /// Median nanoseconds per call on the forced-scalar backend.
    pub scalar_ns: f64,
    /// Median nanoseconds per call on the dispatched backend.
    pub dispatched_ns: f64,
    /// `scalar_ns / dispatched_ns`.
    pub speedup: f64,
}

/// The recorded kernel-dispatch benchmark artifact (`BENCH_kernels.json`).
///
/// Distinguished from [`EngineBenchReport`] by the `"schema": "kernels-v1"`
/// discriminator field, which lets one CI gate validate both artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelBenchReport {
    /// What was measured and how.
    pub benchmark: String,
    /// Machine / build caveats for reproducing the numbers.
    pub machine_note: String,
    /// Backend the dispatcher selected (`"scalar"` on non-AVX2 hosts).
    pub backend: String,
    /// Timing repetitions per cell (the median is recorded).
    pub reps: u64,
    /// The acceptance target the grid was recorded against.
    pub target: String,
    /// One row per (kernel, dimension) cell.
    pub results: Vec<KernelBenchRow>,
}

/// Value of the schema discriminator for [`KernelBenchReport`].
pub const KERNELS_SCHEMA: &str = "kernels-v1";

impl KernelBenchRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("kernel".into(), Json::Str(self.kernel.clone())),
            ("d".into(), Json::Num(self.d as f64)),
            ("scalar_ns".into(), Json::Num(self.scalar_ns)),
            ("dispatched_ns".into(), Json::Num(self.dispatched_ns)),
            ("speedup".into(), Json::Num(self.speedup)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let row = KernelBenchRow {
            kernel: str_field(v, "kernel")?,
            d: num_field(v, "d")? as usize,
            scalar_ns: num_field(v, "scalar_ns")?,
            dispatched_ns: num_field(v, "dispatched_ns")?,
            speedup: num_field(v, "speedup")?,
        };
        if row.d == 0 {
            return Err(format!("{}: zero dimension", row.kernel));
        }
        if row.scalar_ns <= 0.0 || row.dispatched_ns <= 0.0 {
            return Err(format!("{}@{}: non-positive timing", row.kernel, row.d));
        }
        let expect = row.scalar_ns / row.dispatched_ns;
        if (row.speedup - expect).abs() > 0.02 * expect {
            return Err(format!(
                "{}@{}: speedup {} inconsistent with medians (expected {expect:.3})",
                row.kernel, row.d, row.speedup
            ));
        }
        Ok(row)
    }
}

impl KernelBenchReport {
    /// Serializes to the committed artifact layout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(KERNELS_SCHEMA.into())),
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("machine_note".into(), Json::Str(self.machine_note.clone())),
            ("backend".into(), Json::Str(self.backend.clone())),
            ("reps".into(), Json::Num(self.reps as f64)),
            ("target".into(), Json::Str(self.target.clone())),
            (
                "results".into(),
                Json::Arr(self.results.iter().map(|r| r.to_json()).collect()),
            ),
        ])
    }

    /// Parses and schema-checks an artifact. CI-gate strictness: missing
    /// fields, wrong types, non-finite or non-positive timings, an
    /// internally inconsistent speedup, a missing `dot`/`gemm` d=1000 row,
    /// or (on a SIMD backend) a sub-1.5× speedup on those rows all fail.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match field(v, "schema")?.as_str() {
            Some(KERNELS_SCHEMA) => {}
            other => return Err(format!("unexpected schema {other:?}")),
        }
        let results_json = field(v, "results")?
            .as_arr()
            .ok_or("field 'results' is not an array")?;
        if results_json.is_empty() {
            return Err("'results' is empty".to_string());
        }
        let results = results_json
            .iter()
            .map(KernelBenchRow::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let report = KernelBenchReport {
            benchmark: str_field(v, "benchmark")?,
            machine_note: str_field(v, "machine_note")?,
            backend: str_field(v, "backend")?,
            reps: num_field(v, "reps")? as u64,
            target: str_field(v, "target")?,
            results,
        };
        if report.reps == 0 {
            return Err("'reps' must be positive".to_string());
        }
        for kernel in ["dot", "gemm"] {
            let row = report
                .results
                .iter()
                .find(|r| r.kernel == kernel && r.d == 1000)
                .ok_or_else(|| format!("missing required row {kernel}@1000"))?;
            if report.backend != "scalar" && row.speedup < 1.5 {
                return Err(format!(
                    "{kernel}@1000: speedup {:.3} below the 1.5x acceptance floor",
                    row.speedup
                ));
            }
        }
        Ok(report)
    }

    /// Round-trips a report through text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// One row of the backfill scaling sweep: a cold corpus backfill timed at
/// a given worker-pool size.
#[derive(Debug, Clone, PartialEq)]
pub struct BackfillScalingRow {
    /// Worker threads used.
    pub workers: usize,
    /// Median cold wall-clock seconds.
    pub wall_s: f64,
    /// `wall(1 worker) / wall(workers)`.
    pub speedup: f64,
}

/// The recorded partitioned-backfill benchmark artifact
/// (`BENCH_backfill.json`), discriminated by `"schema": "backfill-v1"`.
///
/// Three claims, all CI-gated by [`BackfillBenchReport::from_json`]:
/// parallel scaling (≥2.5× at 4 workers — waived when the recording host
/// has fewer than 4 cores, mirroring the kernels-v1 scalar-backend
/// waiver), warm-store speedup (a full-cache-hit re-run ≥10× faster than
/// cold), and O(partition) incrementality (adding k partitions recomputes
/// exactly k).
#[derive(Debug, Clone, PartialEq)]
pub struct BackfillBenchReport {
    /// What was measured and how.
    pub benchmark: String,
    /// Machine / build caveats for reproducing the numbers.
    pub machine_note: String,
    /// Cores available on the recording host (`available_parallelism`);
    /// governs the scaling-floor waiver.
    pub cores: usize,
    /// Partitions in the backfill corpus.
    pub partitions: u64,
    /// Corpus rows.
    pub rows: u64,
    /// Row dimensionality.
    pub dim: usize,
    /// The acceptance target the artifact was recorded against.
    pub target: String,
    /// Engine restarts during recording (must be 0: backfill never runs
    /// the fault machinery, and a faulted recording is not an artifact).
    pub restarts: u64,
    /// PE restarts during recording (must be 0, as above).
    pub pe_restarts: u64,
    /// Cold scaling sweep, one row per worker count.
    pub scaling: Vec<BackfillScalingRow>,
    /// Median cold wall seconds at the reference worker count.
    pub cold_wall_s: f64,
    /// Median warm (full cache hit) wall seconds at the same worker count.
    pub warm_wall_s: f64,
    /// `cold_wall_s / warm_wall_s`.
    pub warm_speedup: f64,
    /// Store hits observed on the warm run — must equal `partitions`.
    pub warm_cache_hits: u64,
    /// Partitions added for the incremental measurement.
    pub incremental_added: u64,
    /// Partitions recomputed when they were added — must equal
    /// `incremental_added`.
    pub incremental_recomputed: u64,
}

/// Value of the schema discriminator for [`BackfillBenchReport`].
pub const BACKFILL_SCHEMA: &str = "backfill-v1";

/// Scaling floor at 4 workers, and the core count below which it is
/// unmeasurable and therefore waived.
pub const BACKFILL_SCALING_FLOOR: f64 = 2.5;
const BACKFILL_SCALING_WORKERS: usize = 4;
/// Warm re-runs must beat cold runs by at least this factor.
pub const BACKFILL_WARM_FLOOR: f64 = 10.0;

impl BackfillScalingRow {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("workers".into(), Json::Num(self.workers as f64)),
            ("wall_s".into(), Json::Num(self.wall_s)),
            ("speedup".into(), Json::Num(self.speedup)),
        ])
    }

    fn from_json(v: &Json) -> Result<Self, String> {
        let row = BackfillScalingRow {
            workers: num_field(v, "workers")? as usize,
            wall_s: num_field(v, "wall_s")?,
            speedup: num_field(v, "speedup")?,
        };
        if row.workers == 0 {
            return Err("scaling row with zero workers".to_string());
        }
        if row.wall_s <= 0.0 {
            return Err(format!("workers={}: non-positive wall time", row.workers));
        }
        Ok(row)
    }
}

impl BackfillBenchReport {
    /// Serializes to the committed artifact layout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(BACKFILL_SCHEMA.into())),
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("machine_note".into(), Json::Str(self.machine_note.clone())),
            ("cores".into(), Json::Num(self.cores as f64)),
            ("partitions".into(), Json::Num(self.partitions as f64)),
            ("rows".into(), Json::Num(self.rows as f64)),
            ("dim".into(), Json::Num(self.dim as f64)),
            ("target".into(), Json::Str(self.target.clone())),
            ("restarts".into(), Json::Num(self.restarts as f64)),
            ("pe_restarts".into(), Json::Num(self.pe_restarts as f64)),
            (
                "scaling".into(),
                Json::Arr(self.scaling.iter().map(|r| r.to_json()).collect()),
            ),
            ("cold_wall_s".into(), Json::Num(self.cold_wall_s)),
            ("warm_wall_s".into(), Json::Num(self.warm_wall_s)),
            ("warm_speedup".into(), Json::Num(self.warm_speedup)),
            (
                "warm_cache_hits".into(),
                Json::Num(self.warm_cache_hits as f64),
            ),
            (
                "incremental_added".into(),
                Json::Num(self.incremental_added as f64),
            ),
            (
                "incremental_recomputed".into(),
                Json::Num(self.incremental_recomputed as f64),
            ),
        ])
    }

    /// Parses and schema-checks an artifact. CI-gate strictness: on top of
    /// the usual missing-field / type / finiteness checks, `restarts` and
    /// `pe_restarts` must be 0, `warm_cache_hits` must equal `partitions`
    /// (a warm recording that recomputed anything was not warm),
    /// `warm_speedup` must clear the 10× floor and match the recorded wall
    /// times within 2%, the incremental run must have recomputed exactly
    /// the partitions it added, and the 4-worker scaling row must clear
    /// the 2.5× floor — unless the recording host had fewer than 4 cores,
    /// where physical scaling is unmeasurable and the floor is waived
    /// (the kernels-v1 scalar-backend precedent).
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match field(v, "schema")?.as_str() {
            Some(BACKFILL_SCHEMA) => {}
            other => return Err(format!("unexpected schema {other:?}")),
        }
        let scaling_json = field(v, "scaling")?
            .as_arr()
            .ok_or("field 'scaling' is not an array")?;
        if scaling_json.is_empty() {
            return Err("'scaling' is empty".to_string());
        }
        let scaling = scaling_json
            .iter()
            .map(BackfillScalingRow::from_json)
            .collect::<Result<Vec<_>, _>>()?;
        let report = BackfillBenchReport {
            benchmark: str_field(v, "benchmark")?,
            machine_note: str_field(v, "machine_note")?,
            cores: num_field(v, "cores")? as usize,
            partitions: num_field(v, "partitions")? as u64,
            rows: num_field(v, "rows")? as u64,
            dim: num_field(v, "dim")? as usize,
            target: str_field(v, "target")?,
            restarts: num_field(v, "restarts")? as u64,
            pe_restarts: num_field(v, "pe_restarts")? as u64,
            scaling,
            cold_wall_s: num_field(v, "cold_wall_s")?,
            warm_wall_s: num_field(v, "warm_wall_s")?,
            warm_speedup: num_field(v, "warm_speedup")?,
            warm_cache_hits: num_field(v, "warm_cache_hits")? as u64,
            incremental_added: num_field(v, "incremental_added")? as u64,
            incremental_recomputed: num_field(v, "incremental_recomputed")? as u64,
        };
        if report.cores == 0 {
            return Err("'cores' must be positive".to_string());
        }
        if report.partitions == 0 {
            return Err("'partitions' must be positive".to_string());
        }
        if report.restarts > 0 || report.pe_restarts > 0 {
            return Err(format!(
                "restarts {} / pe_restarts {} — benchmark artifacts must be recorded fault-free",
                report.restarts, report.pe_restarts
            ));
        }
        if report.warm_cache_hits != report.partitions {
            return Err(format!(
                "warm run hit the store {} times for {} partitions — not a warm recording",
                report.warm_cache_hits, report.partitions
            ));
        }
        if report.cold_wall_s <= 0.0 || report.warm_wall_s <= 0.0 {
            return Err("non-positive cold/warm wall time".to_string());
        }
        let expect_warm = report.cold_wall_s / report.warm_wall_s;
        if (report.warm_speedup - expect_warm).abs() > 0.02 * expect_warm {
            return Err(format!(
                "warm_speedup {} inconsistent with walls (expected {expect_warm:.3})",
                report.warm_speedup
            ));
        }
        if report.warm_speedup < BACKFILL_WARM_FLOOR {
            return Err(format!(
                "warm_speedup {:.2} below the {BACKFILL_WARM_FLOOR}x acceptance floor",
                report.warm_speedup
            ));
        }
        if report.incremental_added == 0 {
            return Err("'incremental_added' must be positive".to_string());
        }
        if report.incremental_recomputed != report.incremental_added {
            return Err(format!(
                "adding {} partition(s) recomputed {} — incrementality is O(partition), \
                 recomputed must equal added",
                report.incremental_added, report.incremental_recomputed
            ));
        }
        let base = report
            .scaling
            .iter()
            .find(|r| r.workers == 1)
            .ok_or("missing required scaling row at 1 worker")?;
        for row in &report.scaling {
            let expect = base.wall_s / row.wall_s;
            if (row.speedup - expect).abs() > 0.02 * expect.abs() {
                return Err(format!(
                    "workers={}: speedup {} inconsistent with walls (expected {expect:.3})",
                    row.workers, row.speedup
                ));
            }
        }
        let four = report
            .scaling
            .iter()
            .find(|r| r.workers == BACKFILL_SCALING_WORKERS)
            .ok_or("missing required scaling row at 4 workers")?;
        if report.cores >= BACKFILL_SCALING_WORKERS && four.speedup < BACKFILL_SCALING_FLOOR {
            return Err(format!(
                "4-worker speedup {:.3} below the {BACKFILL_SCALING_FLOOR}x acceptance floor \
                 on a {}-core host",
                four.speedup, report.cores
            ));
        }
        Ok(report)
    }

    /// Round-trips a report through text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// The recorded always-on-serving benchmark artifact
/// (`BENCH_serving.json`), discriminated by `"schema": "serving-v1"`.
///
/// Three claims, all CI-gated by [`ServingBenchReport::from_json`]: the
/// server sustains the recorded QPS with sane latency quantiles
/// (p50 ≤ p99 ≤ p999), the recording ran fault-free (restarts and PE
/// restarts both zero), and serving costs the ingest path at most 10%
/// throughput (`ingest_ratio ≥ 0.9` — waived when the recording host has
/// fewer than 4 cores, where the query clients and the engines fight for
/// the same cores and the degradation measures the scheduler, not the
/// serving design; the backfill-v1 scaling-floor precedent).
#[derive(Debug, Clone, PartialEq)]
pub struct ServingBenchReport {
    /// What was measured and how.
    pub benchmark: String,
    /// Machine / build caveats for reproducing the numbers.
    pub machine_note: String,
    /// Cores available on the recording host (`available_parallelism`);
    /// governs the ingest-ratio waiver.
    pub cores: usize,
    /// Row dimensionality of the served eigensystem.
    pub dim: usize,
    /// Tuples ingested per measured run.
    pub tuples: u64,
    /// The acceptance target the artifact was recorded against.
    pub target: String,
    /// Operator restarts during recording (must be 0).
    pub restarts: u64,
    /// Whole-PE restarts during recording (must be 0).
    pub pe_restarts: u64,
    /// Concurrent query clients driving load.
    pub clients: usize,
    /// Total queries answered during the measured window.
    pub requests: u64,
    /// Sustained queries per second over the measured window.
    pub qps: f64,
    /// Median query latency, microseconds.
    pub p50_us: f64,
    /// 99th-percentile query latency, microseconds.
    pub p99_us: f64,
    /// 99.9th-percentile query latency, microseconds.
    pub p999_us: f64,
    /// Ingest throughput with serving disabled (tuples/s).
    pub baseline_tuples_per_s: f64,
    /// Ingest throughput under full query load (tuples/s).
    pub serving_tuples_per_s: f64,
    /// `serving_tuples_per_s / baseline_tuples_per_s`.
    pub ingest_ratio: f64,
}

/// Value of the schema discriminator for [`ServingBenchReport`].
pub const SERVING_SCHEMA: &str = "serving-v1";

/// Serving may cost the ingest path at most this fraction of its
/// no-serving throughput, and the core count below which the floor is
/// unmeasurable and therefore waived.
pub const SERVING_INGEST_FLOOR: f64 = 0.9;
const SERVING_MIN_CORES: usize = 4;

impl ServingBenchReport {
    /// Serializes to the committed artifact layout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(SERVING_SCHEMA.into())),
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("machine_note".into(), Json::Str(self.machine_note.clone())),
            ("cores".into(), Json::Num(self.cores as f64)),
            ("dim".into(), Json::Num(self.dim as f64)),
            ("tuples".into(), Json::Num(self.tuples as f64)),
            ("target".into(), Json::Str(self.target.clone())),
            ("restarts".into(), Json::Num(self.restarts as f64)),
            ("pe_restarts".into(), Json::Num(self.pe_restarts as f64)),
            ("clients".into(), Json::Num(self.clients as f64)),
            ("requests".into(), Json::Num(self.requests as f64)),
            ("qps".into(), Json::Num(self.qps)),
            ("p50_us".into(), Json::Num(self.p50_us)),
            ("p99_us".into(), Json::Num(self.p99_us)),
            ("p999_us".into(), Json::Num(self.p999_us)),
            (
                "baseline_tuples_per_s".into(),
                Json::Num(self.baseline_tuples_per_s),
            ),
            (
                "serving_tuples_per_s".into(),
                Json::Num(self.serving_tuples_per_s),
            ),
            ("ingest_ratio".into(), Json::Num(self.ingest_ratio)),
        ])
    }

    /// Parses and schema-checks an artifact. CI-gate strictness: on top
    /// of the usual missing-field / type / finiteness checks, `restarts`
    /// and `pe_restarts` must be 0, latency quantiles must be positive
    /// and monotone (p50 ≤ p99 ≤ p999), `qps` must agree with
    /// `requests / (tuples-window)`-free recording to the extent the
    /// artifact can express (positive and finite), `ingest_ratio` must
    /// match the recorded throughputs within 2%, and the ratio must
    /// clear the 0.9× floor — unless the recording host had fewer than
    /// 4 cores, where the floor is waived.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match field(v, "schema")?.as_str() {
            Some(SERVING_SCHEMA) => {}
            other => return Err(format!("unexpected schema {other:?}")),
        }
        let report = ServingBenchReport {
            benchmark: str_field(v, "benchmark")?,
            machine_note: str_field(v, "machine_note")?,
            cores: num_field(v, "cores")? as usize,
            dim: num_field(v, "dim")? as usize,
            tuples: num_field(v, "tuples")? as u64,
            target: str_field(v, "target")?,
            restarts: num_field(v, "restarts")? as u64,
            pe_restarts: num_field(v, "pe_restarts")? as u64,
            clients: num_field(v, "clients")? as usize,
            requests: num_field(v, "requests")? as u64,
            qps: num_field(v, "qps")?,
            p50_us: num_field(v, "p50_us")?,
            p99_us: num_field(v, "p99_us")?,
            p999_us: num_field(v, "p999_us")?,
            baseline_tuples_per_s: num_field(v, "baseline_tuples_per_s")?,
            serving_tuples_per_s: num_field(v, "serving_tuples_per_s")?,
            ingest_ratio: num_field(v, "ingest_ratio")?,
        };
        if report.cores == 0 {
            return Err("'cores' must be positive".to_string());
        }
        if report.dim == 0 || report.tuples == 0 {
            return Err("'dim' and 'tuples' must be positive".to_string());
        }
        if report.restarts > 0 || report.pe_restarts > 0 {
            return Err(format!(
                "restarts {} / pe_restarts {} — benchmark artifacts must be recorded fault-free",
                report.restarts, report.pe_restarts
            ));
        }
        if report.clients == 0 || report.requests == 0 {
            return Err("'clients' and 'requests' must be positive".to_string());
        }
        if report.qps <= 0.0 {
            return Err("'qps' must be positive".to_string());
        }
        if report.p50_us <= 0.0 {
            return Err("'p50_us' must be positive".to_string());
        }
        if report.p50_us > report.p99_us || report.p99_us > report.p999_us {
            return Err(format!(
                "latency quantiles must be monotone: p50 {} / p99 {} / p999 {}",
                report.p50_us, report.p99_us, report.p999_us
            ));
        }
        if report.baseline_tuples_per_s <= 0.0 || report.serving_tuples_per_s <= 0.0 {
            return Err("ingest throughputs must be positive".to_string());
        }
        let expect = report.serving_tuples_per_s / report.baseline_tuples_per_s;
        if (report.ingest_ratio - expect).abs() > 0.02 * expect {
            return Err(format!(
                "ingest_ratio {} inconsistent with throughputs (expected {expect:.3})",
                report.ingest_ratio
            ));
        }
        if report.cores >= SERVING_MIN_CORES && report.ingest_ratio < SERVING_INGEST_FLOOR {
            return Err(format!(
                "ingest_ratio {:.3} below the {SERVING_INGEST_FLOOR} acceptance floor \
                 on a {}-core host — serving must not cost ingest more than 10%",
                report.ingest_ratio, report.cores
            ));
        }
        Ok(report)
    }

    /// Round-trips a report through text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// The recorded wire-transport benchmark artifact (`BENCH_net.json`),
/// discriminated by `"schema": "net-v1"`.
///
/// Three claims, all CI-gated by [`NetBenchReport::from_json`]: the
/// columnar frame codec beats the CSV text path it replaced by at least
/// 5× round-trip at d = 1000 with zero steady-state allocations, the
/// real 2-process loopback run holds at least 0.5× of the in-process
/// single-address-space throughput (waived below 4 cores, where the two
/// processes time-slice one core and the ratio measures the scheduler),
/// and the recording ran fault-free (no restarts, no respawns). The
/// measured per-message overhead is the calibration constant for the
/// cluster cost model's modeled network delay.
#[derive(Debug, Clone, PartialEq)]
pub struct NetBenchReport {
    /// What was measured and how.
    pub benchmark: String,
    /// Machine / build caveats for reproducing the numbers.
    pub machine_note: String,
    /// Cores available on the recording host (`available_parallelism`);
    /// governs the distributed-ratio waiver.
    pub cores: usize,
    /// Observation dimensionality of the codec microbenchmark.
    pub dim: usize,
    /// Tuples per encoded frame.
    pub batch: usize,
    /// Tuples pushed through the codec per measured repetition.
    pub tuples: u64,
    /// The acceptance target the artifact was recorded against.
    pub target: String,
    /// Operator restarts plus worker respawns during the distributed
    /// recording (must be 0 — artifacts are recorded fault-free).
    pub restarts: u64,
    /// Codec encode throughput over wire bytes, GB/s.
    pub codec_encode_gbps: f64,
    /// Codec decode throughput over wire bytes, GB/s.
    pub codec_decode_gbps: f64,
    /// Encode + decode round trips, tuples/s.
    pub codec_roundtrip_tuples_per_s: f64,
    /// CSV format + parse round trips of the same observations, tuples/s.
    pub csv_roundtrip_tuples_per_s: f64,
    /// `codec_roundtrip_tuples_per_s / csv_roundtrip_tuples_per_s`.
    pub codec_vs_csv: f64,
    /// Heap allocations during the measured codec stretch (must be 0).
    pub codec_steady_allocs: u64,
    /// Encoded frame size per tuple, bytes — the wire footprint.
    pub frame_bytes_per_tuple: f64,
    /// In-process baseline (`--workers 0`) ingest throughput, tuples/s.
    pub local_tuples_per_s: f64,
    /// 2-process loopback distributed ingest throughput, tuples/s.
    pub dist_tuples_per_s: f64,
    /// `dist_tuples_per_s / local_tuples_per_s`.
    pub dist_ratio: f64,
    /// Measured per-message overhead on loopback TCP (half the round
    /// trip of a frame-sized message), microseconds. Calibrates the
    /// cluster cost model's `network_delay_us`.
    pub per_message_overhead_us: f64,
}

/// Value of the schema discriminator for [`NetBenchReport`].
pub const NET_SCHEMA: &str = "net-v1";

/// The codec must beat the CSV path it replaced by at least this factor
/// round-trip at the recorded dimensionality.
pub const NET_CODEC_FLOOR: f64 = 5.0;

/// The 2-process loopback run must hold this fraction of in-process
/// throughput, and the core count below which the floor is unmeasurable
/// (two processes on one core measure time-slicing) and therefore waived.
pub const NET_DIST_FLOOR: f64 = 0.5;
const NET_MIN_CORES: usize = 4;

impl NetBenchReport {
    /// Serializes to the committed artifact layout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(NET_SCHEMA.into())),
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("machine_note".into(), Json::Str(self.machine_note.clone())),
            ("cores".into(), Json::Num(self.cores as f64)),
            ("dim".into(), Json::Num(self.dim as f64)),
            ("batch".into(), Json::Num(self.batch as f64)),
            ("tuples".into(), Json::Num(self.tuples as f64)),
            ("target".into(), Json::Str(self.target.clone())),
            ("restarts".into(), Json::Num(self.restarts as f64)),
            (
                "codec_encode_gbps".into(),
                Json::Num(self.codec_encode_gbps),
            ),
            (
                "codec_decode_gbps".into(),
                Json::Num(self.codec_decode_gbps),
            ),
            (
                "codec_roundtrip_tuples_per_s".into(),
                Json::Num(self.codec_roundtrip_tuples_per_s),
            ),
            (
                "csv_roundtrip_tuples_per_s".into(),
                Json::Num(self.csv_roundtrip_tuples_per_s),
            ),
            ("codec_vs_csv".into(), Json::Num(self.codec_vs_csv)),
            (
                "codec_steady_allocs".into(),
                Json::Num(self.codec_steady_allocs as f64),
            ),
            (
                "frame_bytes_per_tuple".into(),
                Json::Num(self.frame_bytes_per_tuple),
            ),
            (
                "local_tuples_per_s".into(),
                Json::Num(self.local_tuples_per_s),
            ),
            (
                "dist_tuples_per_s".into(),
                Json::Num(self.dist_tuples_per_s),
            ),
            ("dist_ratio".into(), Json::Num(self.dist_ratio)),
            (
                "per_message_overhead_us".into(),
                Json::Num(self.per_message_overhead_us),
            ),
        ])
    }

    /// Parses and schema-checks an artifact. CI-gate strictness: on top
    /// of the usual missing-field / type / finiteness checks, the derived
    /// ratios must agree with their numerators and denominators within
    /// 2%, `codec_vs_csv` must clear the 5× floor, `codec_steady_allocs`
    /// and `restarts` must be 0, and `dist_ratio` must clear the 0.5×
    /// floor unless the recording host had fewer than 4 cores.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match field(v, "schema")?.as_str() {
            Some(NET_SCHEMA) => {}
            other => return Err(format!("unexpected schema {other:?}")),
        }
        let report = NetBenchReport {
            benchmark: str_field(v, "benchmark")?,
            machine_note: str_field(v, "machine_note")?,
            cores: num_field(v, "cores")? as usize,
            dim: num_field(v, "dim")? as usize,
            batch: num_field(v, "batch")? as usize,
            tuples: num_field(v, "tuples")? as u64,
            target: str_field(v, "target")?,
            restarts: num_field(v, "restarts")? as u64,
            codec_encode_gbps: num_field(v, "codec_encode_gbps")?,
            codec_decode_gbps: num_field(v, "codec_decode_gbps")?,
            codec_roundtrip_tuples_per_s: num_field(v, "codec_roundtrip_tuples_per_s")?,
            csv_roundtrip_tuples_per_s: num_field(v, "csv_roundtrip_tuples_per_s")?,
            codec_vs_csv: num_field(v, "codec_vs_csv")?,
            codec_steady_allocs: num_field(v, "codec_steady_allocs")? as u64,
            frame_bytes_per_tuple: num_field(v, "frame_bytes_per_tuple")?,
            local_tuples_per_s: num_field(v, "local_tuples_per_s")?,
            dist_tuples_per_s: num_field(v, "dist_tuples_per_s")?,
            dist_ratio: num_field(v, "dist_ratio")?,
            per_message_overhead_us: num_field(v, "per_message_overhead_us")?,
        };
        if report.cores == 0 {
            return Err("'cores' must be positive".to_string());
        }
        if report.dim == 0 || report.batch == 0 || report.tuples == 0 {
            return Err("'dim', 'batch', and 'tuples' must be positive".to_string());
        }
        if report.restarts > 0 {
            return Err(format!(
                "restarts {} — benchmark artifacts must be recorded fault-free",
                report.restarts
            ));
        }
        for (name, x) in [
            ("codec_encode_gbps", report.codec_encode_gbps),
            ("codec_decode_gbps", report.codec_decode_gbps),
            (
                "codec_roundtrip_tuples_per_s",
                report.codec_roundtrip_tuples_per_s,
            ),
            (
                "csv_roundtrip_tuples_per_s",
                report.csv_roundtrip_tuples_per_s,
            ),
            ("frame_bytes_per_tuple", report.frame_bytes_per_tuple),
            ("local_tuples_per_s", report.local_tuples_per_s),
            ("dist_tuples_per_s", report.dist_tuples_per_s),
            ("per_message_overhead_us", report.per_message_overhead_us),
        ] {
            if x <= 0.0 {
                return Err(format!("'{name}' must be positive"));
            }
        }
        let expect = report.codec_roundtrip_tuples_per_s / report.csv_roundtrip_tuples_per_s;
        if (report.codec_vs_csv - expect).abs() > 0.02 * expect {
            return Err(format!(
                "codec_vs_csv {} inconsistent with the recorded rates (expected {expect:.3})",
                report.codec_vs_csv
            ));
        }
        if report.codec_vs_csv < NET_CODEC_FLOOR {
            return Err(format!(
                "codec_vs_csv {:.2} below the {NET_CODEC_FLOOR}x acceptance floor at d = {}",
                report.codec_vs_csv, report.dim
            ));
        }
        if report.codec_steady_allocs > 0 {
            return Err(format!(
                "codec_steady_allocs {} — the codec hot path must not allocate in steady state",
                report.codec_steady_allocs
            ));
        }
        let expect = report.dist_tuples_per_s / report.local_tuples_per_s;
        if (report.dist_ratio - expect).abs() > 0.02 * expect {
            return Err(format!(
                "dist_ratio {} inconsistent with the recorded throughputs (expected {expect:.3})",
                report.dist_ratio
            ));
        }
        if report.cores >= NET_MIN_CORES && report.dist_ratio < NET_DIST_FLOOR {
            return Err(format!(
                "dist_ratio {:.3} below the {NET_DIST_FLOOR}x acceptance floor on a {}-core \
                 host — the wire transport must not halve throughput on loopback",
                report.dist_ratio, report.cores
            ));
        }
        Ok(report)
    }

    /// Round-trips a report through text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

/// The recorded elastic-rescale benchmark (`BENCH_elastic.json`). The
/// gates encode the autoscaling acceptance bar: a run that scales out
/// and back in mid-stream must lose zero tuples, must stay fault-free
/// (no restarts, no PE restarts — rescales are not failures), and the
/// final merged eigensystem must agree with a fixed-fleet reference over
/// the same observations within the documented subspace tolerance.
/// Rescale latency (bootstrap + admission for scale-out, drain + merge
/// for scale-in) is gated below a generous ceiling — waived when the
/// recording host has fewer than 4 cores, where every thread time-slices
/// and the latency measures the scheduler, not the migration.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticBenchReport {
    /// What was measured and how.
    pub benchmark: String,
    /// Machine / build caveats for reproducing the numbers.
    pub machine_note: String,
    /// Cores available on the recording host (`available_parallelism`);
    /// governs the rescale-latency waiver.
    pub cores: usize,
    /// Observation dimensionality.
    pub dim: usize,
    /// Total tuples streamed through the elastic run.
    pub tuples: u64,
    /// The acceptance target the artifact was recorded against.
    pub target: String,
    /// Operator restarts during the recording (must be 0 — a rescale is
    /// not a failure and must not be absorbed by the restart machinery).
    pub restarts: u64,
    /// Whole-PE restarts during the recording (must be 0).
    pub pe_restarts: u64,
    /// Engines admitted across the run (from the run report; ≥ 1).
    pub scale_outs: u64,
    /// Engines retired across the run (from the run report; ≥ 1).
    pub scale_ins: u64,
    /// `source tuples_out − Σ pca tuples_in` (must be 0).
    pub tuple_loss: u64,
    /// Wall-clock of the scale-out migration: checkpoint-format
    /// bootstrap + membership flip, milliseconds.
    pub scale_out_latency_ms: f64,
    /// Wall-clock of the scale-in migration: membership flip + drain +
    /// final merge, milliseconds.
    pub scale_in_latency_ms: f64,
    /// Subspace distance between the elastic run's merged eigensystem
    /// and the fixed-fleet reference over the same observations.
    pub consistency: f64,
    /// Provisioned engine ceiling of the elastic run.
    pub max_engines: usize,
    /// Active fleet size when the stream ended.
    pub final_engines: usize,
}

/// Value of the schema discriminator for [`ElasticBenchReport`].
pub const ELASTIC_SCHEMA: &str = "elastic-v1";

/// Documented consistency bound: the elastic run and its fixed-fleet
/// reference must agree to this subspace distance (mirrors
/// `crates/engine/tests/elastic.rs`).
pub const ELASTIC_CONSISTENCY_TOL: f64 = 0.25;

/// A single rescale (bootstrap or drain + merge, excluding stream time)
/// must complete within this many milliseconds on a multi-core host.
pub const ELASTIC_LATENCY_CEILING_MS: f64 = 1_000.0;
const ELASTIC_MIN_CORES: usize = 4;

impl ElasticBenchReport {
    /// Serializes to the committed artifact layout.
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("schema".into(), Json::Str(ELASTIC_SCHEMA.into())),
            ("benchmark".into(), Json::Str(self.benchmark.clone())),
            ("machine_note".into(), Json::Str(self.machine_note.clone())),
            ("cores".into(), Json::Num(self.cores as f64)),
            ("dim".into(), Json::Num(self.dim as f64)),
            ("tuples".into(), Json::Num(self.tuples as f64)),
            ("target".into(), Json::Str(self.target.clone())),
            ("restarts".into(), Json::Num(self.restarts as f64)),
            ("pe_restarts".into(), Json::Num(self.pe_restarts as f64)),
            ("scale_outs".into(), Json::Num(self.scale_outs as f64)),
            ("scale_ins".into(), Json::Num(self.scale_ins as f64)),
            ("tuple_loss".into(), Json::Num(self.tuple_loss as f64)),
            (
                "scale_out_latency_ms".into(),
                Json::Num(self.scale_out_latency_ms),
            ),
            (
                "scale_in_latency_ms".into(),
                Json::Num(self.scale_in_latency_ms),
            ),
            ("consistency".into(), Json::Num(self.consistency)),
            ("max_engines".into(), Json::Num(self.max_engines as f64)),
            ("final_engines".into(), Json::Num(self.final_engines as f64)),
        ])
    }

    /// Parses and schema-checks an artifact. CI-gate strictness: a
    /// recorded elastic run must contain at least one scale-out and one
    /// scale-in, zero tuple loss, zero restarts of either kind, a
    /// consistency distance within [`ELASTIC_CONSISTENCY_TOL`], a final
    /// fleet within `1..=max_engines`, and rescale latencies under
    /// [`ELASTIC_LATENCY_CEILING_MS`] unless the recording host had
    /// fewer than 4 cores.
    pub fn from_json(v: &Json) -> Result<Self, String> {
        match field(v, "schema")?.as_str() {
            Some(ELASTIC_SCHEMA) => {}
            other => return Err(format!("unexpected schema {other:?}")),
        }
        let report = ElasticBenchReport {
            benchmark: str_field(v, "benchmark")?,
            machine_note: str_field(v, "machine_note")?,
            cores: num_field(v, "cores")? as usize,
            dim: num_field(v, "dim")? as usize,
            tuples: num_field(v, "tuples")? as u64,
            target: str_field(v, "target")?,
            restarts: num_field(v, "restarts")? as u64,
            pe_restarts: num_field(v, "pe_restarts")? as u64,
            scale_outs: num_field(v, "scale_outs")? as u64,
            scale_ins: num_field(v, "scale_ins")? as u64,
            tuple_loss: num_field(v, "tuple_loss")? as u64,
            scale_out_latency_ms: num_field(v, "scale_out_latency_ms")?,
            scale_in_latency_ms: num_field(v, "scale_in_latency_ms")?,
            consistency: num_field(v, "consistency")?,
            max_engines: num_field(v, "max_engines")? as usize,
            final_engines: num_field(v, "final_engines")? as usize,
        };
        if report.cores == 0 {
            return Err("'cores' must be positive".to_string());
        }
        if report.dim == 0 || report.tuples == 0 {
            return Err("'dim' and 'tuples' must be positive".to_string());
        }
        if report.restarts > 0 || report.pe_restarts > 0 {
            return Err(format!(
                "restarts {} / pe_restarts {} — a rescale is not a failure; elastic artifacts \
                 must be recorded fault-free",
                report.restarts, report.pe_restarts
            ));
        }
        if report.scale_outs == 0 || report.scale_ins == 0 {
            return Err(format!(
                "scale_outs {} / scale_ins {} — the recorded run must contain at least one \
                 rescale in each direction",
                report.scale_outs, report.scale_ins
            ));
        }
        if report.tuple_loss > 0 {
            return Err(format!(
                "tuple_loss {} — rescales must conserve every tuple",
                report.tuple_loss
            ));
        }
        for (name, x) in [
            ("scale_out_latency_ms", report.scale_out_latency_ms),
            ("scale_in_latency_ms", report.scale_in_latency_ms),
        ] {
            if !x.is_finite() || x <= 0.0 {
                return Err(format!("'{name}' must be positive and finite"));
            }
        }
        if !report.consistency.is_finite() || report.consistency < 0.0 {
            return Err("'consistency' must be a finite non-negative distance".to_string());
        }
        if report.consistency > ELASTIC_CONSISTENCY_TOL {
            return Err(format!(
                "consistency {:.4} above the {ELASTIC_CONSISTENCY_TOL} subspace tolerance — the \
                 elastic run diverged from its fixed-fleet reference",
                report.consistency
            ));
        }
        if report.max_engines == 0
            || report.final_engines == 0
            || report.final_engines > report.max_engines
        {
            return Err(format!(
                "final_engines {} outside 1..=max_engines ({})",
                report.final_engines, report.max_engines
            ));
        }
        if report.cores >= ELASTIC_MIN_CORES {
            for (name, x) in [
                ("scale_out_latency_ms", report.scale_out_latency_ms),
                ("scale_in_latency_ms", report.scale_in_latency_ms),
            ] {
                if x > ELASTIC_LATENCY_CEILING_MS {
                    return Err(format!(
                        "{name} {x:.1} above the {ELASTIC_LATENCY_CEILING_MS} ms ceiling on a \
                         {}-core host",
                        report.cores
                    ));
                }
            }
        }
        Ok(report)
    }

    /// Round-trips a report through text.
    pub fn parse(text: &str) -> Result<Self, String> {
        Self::from_json(&Json::parse(text)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_nesting() {
        let v = Json::parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": true, "d": null}, "e": "x\ny"}"#)
            .unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[1].as_f64(), Some(2.5));
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2], Json::Num(-300.0));
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("b").unwrap().get("d"), Some(&Json::Null));
        assert_eq!(v.get("e").unwrap().as_str(), Some("x\ny"));
    }

    #[test]
    fn rejects_malformed() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{\"a\": 1} trailing",
            "\"unterminated",
            "nul",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    fn sample_report() -> EngineBenchReport {
        EngineBenchReport {
            benchmark: "engine transport".into(),
            machine_note: "test".into(),
            tuples: 3000,
            dim: 64,
            batch: 64,
            target: "1.5x".into(),
            restarts: 0,
            pe_restarts: 0,
            results: vec![EngineBenchRow {
                config: "unfused-2".into(),
                fused: false,
                engines: 2,
                batch1_tuples_per_s: 1000.0,
                batched_tuples_per_s: 2000.0,
                speedup: 2.0,
            }],
        }
    }

    #[test]
    fn report_round_trips() {
        let report = sample_report();
        let text = report.to_json().to_string();
        let back = EngineBenchReport::parse(&text).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn schema_check_catches_inconsistency() {
        let mut report = sample_report();
        report.results[0].speedup = 9.0; // does not match the medians
        let text = report.to_json().to_string();
        assert!(EngineBenchReport::parse(&text)
            .unwrap_err()
            .contains("inconsistent"));
    }

    #[test]
    fn nonzero_restarts_is_rejected() {
        let mut report = sample_report();
        report.restarts = 3;
        let text = report.to_json().to_string();
        let err = EngineBenchReport::parse(&text).unwrap_err();
        assert!(err.contains("fault-free"), "{err}");
    }

    #[test]
    fn nonzero_pe_restarts_is_rejected() {
        let mut report = sample_report();
        report.pe_restarts = 1;
        let text = report.to_json().to_string();
        let err = EngineBenchReport::parse(&text).unwrap_err();
        assert!(err.contains("fault-free"), "{err}");
        assert!(err.contains("pe_restarts"), "{err}");
    }

    #[test]
    fn missing_restarts_field_defaults_to_zero() {
        // Back-compat with artifacts recorded before the field existed.
        let Json::Obj(fields) = sample_report().to_json() else {
            unreachable!()
        };
        let pruned = Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "restarts" && k != "pe_restarts")
                .collect(),
        );
        let back = EngineBenchReport::parse(&pruned.to_string()).unwrap();
        assert_eq!(back.restarts, 0);
        assert_eq!(back.pe_restarts, 0);
    }

    #[test]
    fn schema_check_catches_missing_fields() {
        let err = EngineBenchReport::parse(r#"{"benchmark": "x"}"#).unwrap_err();
        assert!(err.contains("missing field"), "{err}");
    }

    fn sample_kernel_report() -> KernelBenchReport {
        let row = |kernel: &str, d: usize, s: f64, v: f64| KernelBenchRow {
            kernel: kernel.into(),
            d,
            scalar_ns: s,
            dispatched_ns: v,
            speedup: s / v,
        };
        KernelBenchReport {
            benchmark: "kernel dispatch".into(),
            machine_note: "test".into(),
            backend: "avx2_fma".into(),
            reps: 25,
            target: ">=1.5x on dot and gemm at d=1000".into(),
            results: vec![
                row("dot", 256, 100.0, 40.0),
                row("dot", 1000, 400.0, 150.0),
                row("gemm", 1000, 9000.0, 3000.0),
            ],
        }
    }

    #[test]
    fn kernel_report_round_trips() {
        let report = sample_kernel_report();
        let text = report.to_json().to_string();
        assert_eq!(KernelBenchReport::parse(&text).unwrap(), report);
    }

    #[test]
    fn kernel_report_requires_discriminator() {
        let Json::Obj(fields) = sample_kernel_report().to_json() else {
            unreachable!()
        };
        let pruned = Json::Obj(fields.into_iter().filter(|(k, _)| k != "schema").collect());
        let err = KernelBenchReport::parse(&pruned.to_string()).unwrap_err();
        assert!(err.contains("schema"), "{err}");
    }

    #[test]
    fn kernel_report_requires_d1000_rows() {
        let mut report = sample_kernel_report();
        report.results.retain(|r| r.kernel != "gemm");
        let err = KernelBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("gemm@1000"), "{err}");
    }

    #[test]
    fn kernel_report_enforces_speedup_floor_on_simd_backend() {
        let mut report = sample_kernel_report();
        report.results[1].dispatched_ns = 390.0; // 1.03x at dot@1000
        report.results[1].speedup = 400.0 / 390.0;
        let err = KernelBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("1.5x"), "{err}");
        // The same numbers are fine when the host had no SIMD backend.
        report.backend = "scalar".into();
        assert!(KernelBenchReport::parse(&report.to_json().to_string()).is_ok());
    }

    fn sample_backfill_report() -> BackfillBenchReport {
        let row = |workers: usize, wall_s: f64| BackfillScalingRow {
            workers,
            wall_s,
            speedup: 8.0 / wall_s,
        };
        BackfillBenchReport {
            benchmark: "partitioned backfill".into(),
            machine_note: "test".into(),
            cores: 8,
            partitions: 8,
            rows: 6000,
            dim: 64,
            target: ">=2.5x at 4 workers; warm >=10x; +1 partition recomputes 1".into(),
            restarts: 0,
            pe_restarts: 0,
            scaling: vec![row(1, 8.0), row(2, 4.2), row(4, 2.5), row(8, 1.6)],
            cold_wall_s: 2.5,
            warm_wall_s: 0.05,
            warm_speedup: 50.0,
            warm_cache_hits: 8,
            incremental_added: 1,
            incremental_recomputed: 1,
        }
    }

    #[test]
    fn backfill_report_round_trips() {
        let report = sample_backfill_report();
        let text = report.to_json().to_string();
        assert_eq!(BackfillBenchReport::parse(&text).unwrap(), report);
    }

    #[test]
    fn backfill_report_rejects_partial_cache_hits() {
        let mut report = sample_backfill_report();
        report.warm_cache_hits = 7;
        let err = BackfillBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("not a warm recording"), "{err}");
    }

    #[test]
    fn backfill_report_requires_warm_cache_hits_field() {
        let Json::Obj(fields) = sample_backfill_report().to_json() else {
            unreachable!()
        };
        let pruned = Json::Obj(
            fields
                .into_iter()
                .filter(|(k, _)| k != "warm_cache_hits")
                .collect(),
        );
        let err = BackfillBenchReport::parse(&pruned.to_string()).unwrap_err();
        assert!(err.contains("warm_cache_hits"), "{err}");
    }

    #[test]
    fn backfill_report_rejects_nonzero_restarts() {
        let mut report = sample_backfill_report();
        report.restarts = 1;
        let err = BackfillBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("fault-free"), "{err}");
        report.restarts = 0;
        report.pe_restarts = 2;
        let err = BackfillBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("fault-free"), "{err}");
    }

    #[test]
    fn backfill_report_enforces_warm_floor() {
        let mut report = sample_backfill_report();
        report.warm_wall_s = 1.0;
        report.warm_speedup = 2.5;
        let err = BackfillBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("10"), "{err}");
    }

    #[test]
    fn backfill_report_enforces_incrementality() {
        let mut report = sample_backfill_report();
        report.incremental_recomputed = 9; // recomputed history too
        let err = BackfillBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("recomputed must equal added"), "{err}");
    }

    #[test]
    fn backfill_report_scaling_floor_waived_below_four_cores() {
        let mut report = sample_backfill_report();
        // No physical parallelism: every worker count takes as long as one.
        for row in report.scaling.iter_mut() {
            row.wall_s = 8.0;
            row.speedup = 1.0;
        }
        report.cold_wall_s = 8.0;
        report.warm_wall_s = 0.1;
        report.warm_speedup = 80.0;
        // On a 4+-core host that is a failed recording...
        let err = BackfillBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("2.5"), "{err}");
        // ...on a 1-core container the floor is unmeasurable and waived.
        report.cores = 1;
        assert!(BackfillBenchReport::parse(&report.to_json().to_string()).is_ok());
    }

    #[test]
    fn backfill_report_catches_inconsistent_scaling_speedup() {
        let mut report = sample_backfill_report();
        report.scaling[2].speedup = 9.0;
        let err = BackfillBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    fn sample_serving_report() -> ServingBenchReport {
        ServingBenchReport {
            benchmark: "always-on eigensystem serving".into(),
            machine_note: "test".into(),
            cores: 8,
            dim: 64,
            tuples: 200_000,
            target: "ingest ratio >= 0.9 under full query load".into(),
            restarts: 0,
            pe_restarts: 0,
            clients: 4,
            requests: 120_000,
            qps: 24_000.0,
            p50_us: 80.0,
            p99_us: 400.0,
            p999_us: 1_500.0,
            baseline_tuples_per_s: 100_000.0,
            serving_tuples_per_s: 95_000.0,
            ingest_ratio: 0.95,
        }
    }

    #[test]
    fn serving_report_round_trips() {
        let report = sample_serving_report();
        let text = report.to_json().to_string();
        assert_eq!(ServingBenchReport::parse(&text).unwrap(), report);
    }

    #[test]
    fn serving_report_rejects_nonzero_restarts() {
        let mut report = sample_serving_report();
        report.restarts = 1;
        let err = ServingBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("fault-free"), "{err}");
        report.restarts = 0;
        report.pe_restarts = 1;
        let err = ServingBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("fault-free"), "{err}");
    }

    #[test]
    fn serving_report_requires_monotone_quantiles() {
        let mut report = sample_serving_report();
        report.p99_us = report.p999_us * 2.0;
        let err = ServingBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("monotone"), "{err}");
    }

    #[test]
    fn serving_report_enforces_ingest_floor_with_core_waiver() {
        let mut report = sample_serving_report();
        report.serving_tuples_per_s = 60_000.0;
        report.ingest_ratio = 0.6;
        // On a 4+-core host the degradation gate fails the artifact...
        let err = ServingBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("0.9"), "{err}");
        // ...on a small container the floor is unmeasurable and waived.
        report.cores = 2;
        assert!(ServingBenchReport::parse(&report.to_json().to_string()).is_ok());
    }

    #[test]
    fn serving_report_catches_inconsistent_ratio() {
        let mut report = sample_serving_report();
        report.ingest_ratio = 0.99;
        let err = ServingBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    #[test]
    fn kernel_report_catches_inconsistent_speedup() {
        let mut report = sample_kernel_report();
        report.results[0].speedup = 9.0;
        let err = KernelBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    fn sample_net_report() -> NetBenchReport {
        NetBenchReport {
            benchmark: "wire transport".into(),
            machine_note: "test".into(),
            cores: 8,
            dim: 1000,
            batch: 64,
            tuples: 6400,
            target: "codec >= 5x CSV, dist >= 0.5x local".into(),
            restarts: 0,
            codec_encode_gbps: 4.0,
            codec_decode_gbps: 6.0,
            codec_roundtrip_tuples_per_s: 400_000.0,
            csv_roundtrip_tuples_per_s: 40_000.0,
            codec_vs_csv: 10.0,
            codec_steady_allocs: 0,
            frame_bytes_per_tuple: 8_030.0,
            local_tuples_per_s: 60_000.0,
            dist_tuples_per_s: 45_000.0,
            dist_ratio: 0.75,
            per_message_overhead_us: 40.0,
        }
    }

    #[test]
    fn net_report_round_trips() {
        let report = sample_net_report();
        let text = report.to_json().to_string();
        assert_eq!(NetBenchReport::parse(&text).unwrap(), report);
    }

    #[test]
    fn net_report_rejects_nonzero_restarts_and_allocs() {
        let mut report = sample_net_report();
        report.restarts = 1;
        let err = NetBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("fault-free"), "{err}");
        report.restarts = 0;
        report.codec_steady_allocs = 3;
        let err = NetBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("allocate"), "{err}");
    }

    #[test]
    fn net_report_enforces_codec_floor_unconditionally() {
        let mut report = sample_net_report();
        report.codec_roundtrip_tuples_per_s = 120_000.0;
        report.codec_vs_csv = 3.0;
        // Even on a tiny host: the codec bench is single-threaded and
        // CPU-bound, so the floor is measurable everywhere.
        report.cores = 1;
        let err = NetBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("5x acceptance floor"), "{err}");
    }

    #[test]
    fn net_report_enforces_dist_floor_with_core_waiver() {
        let mut report = sample_net_report();
        report.dist_tuples_per_s = 24_000.0;
        report.dist_ratio = 0.4;
        let err = NetBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("0.5x acceptance floor"), "{err}");
        // Two processes time-slicing one core measure the scheduler, not
        // the transport: waived below 4 cores.
        report.cores = 1;
        assert!(NetBenchReport::parse(&report.to_json().to_string()).is_ok());
    }

    #[test]
    fn net_report_catches_inconsistent_ratios() {
        let mut report = sample_net_report();
        report.codec_vs_csv = 7.0;
        let err = NetBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");

        let mut report = sample_net_report();
        report.dist_ratio = 0.9;
        let err = NetBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("inconsistent"), "{err}");
    }

    fn sample_elastic_report() -> ElasticBenchReport {
        ElasticBenchReport {
            benchmark: "elastic rescale".into(),
            machine_note: "test".into(),
            cores: 8,
            dim: 32,
            tuples: 200_000,
            target: "zero loss, consistency <= 0.25".into(),
            restarts: 0,
            pe_restarts: 0,
            scale_outs: 1,
            scale_ins: 1,
            tuple_loss: 0,
            scale_out_latency_ms: 12.5,
            scale_in_latency_ms: 40.0,
            consistency: 0.03,
            max_engines: 3,
            final_engines: 1,
        }
    }

    #[test]
    fn elastic_report_round_trips() {
        let report = sample_elastic_report();
        let back = ElasticBenchReport::parse(&report.to_json().to_string()).unwrap();
        assert_eq!(back, report);
    }

    #[test]
    fn elastic_report_rejects_faulted_or_lossy_recordings() {
        let mut report = sample_elastic_report();
        report.restarts = 1;
        let err = ElasticBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("fault-free"), "{err}");

        let mut report = sample_elastic_report();
        report.pe_restarts = 2;
        let err = ElasticBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("fault-free"), "{err}");

        let mut report = sample_elastic_report();
        report.tuple_loss = 3;
        let err = ElasticBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("conserve"), "{err}");
    }

    #[test]
    fn elastic_report_requires_a_rescale_in_each_direction() {
        let mut report = sample_elastic_report();
        report.scale_ins = 0;
        let err = ElasticBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("each direction"), "{err}");

        let mut report = sample_elastic_report();
        report.scale_outs = 0;
        assert!(ElasticBenchReport::parse(&report.to_json().to_string()).is_err());
    }

    #[test]
    fn elastic_report_enforces_consistency_unconditionally() {
        let mut report = sample_elastic_report();
        report.consistency = 0.5;
        let err = ElasticBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("subspace tolerance"), "{err}");
        // No core waiver for correctness: a 1-core host must still agree
        // with the fixed-fleet reference.
        report.cores = 1;
        assert!(ElasticBenchReport::parse(&report.to_json().to_string()).is_err());
    }

    #[test]
    fn elastic_report_latency_ceiling_waived_below_four_cores() {
        let mut report = sample_elastic_report();
        report.scale_in_latency_ms = 5_000.0;
        let err = ElasticBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("ceiling"), "{err}");
        // On a time-sliced host the latency measures the scheduler.
        report.cores = 1;
        assert!(ElasticBenchReport::parse(&report.to_json().to_string()).is_ok());
    }

    #[test]
    fn elastic_report_bounds_the_final_fleet() {
        let mut report = sample_elastic_report();
        report.final_engines = 4; // above max_engines = 3
        let err = ElasticBenchReport::parse(&report.to_json().to_string()).unwrap_err();
        assert!(err.contains("max_engines"), "{err}");
    }
}
