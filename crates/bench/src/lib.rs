//! Shared harness for the figure-regeneration binaries and benches.
//!
//! One binary per paper figure (see `src/bin/`): each prints the same
//! rows/series the paper reports and writes a CSV next to it under
//! `target/figures/`. The criterion benches measure the kernel costs that
//! calibrate the cluster simulator.

pub mod json;

use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::{PcaConfig, RobustPca};
use spca_spectra::PlantedSubspace;
use std::io::Write;
use std::path::PathBuf;
use std::time::Instant;

/// Directory where figure CSVs land.
pub fn figures_dir() -> PathBuf {
    let dir = PathBuf::from("target/figures");
    std::fs::create_dir_all(&dir).expect("create figures dir");
    dir
}

/// Writes a CSV with a header row and `rows` of equal length.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<f64>]) -> PathBuf {
    let path = figures_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("create csv");
    writeln!(f, "{}", header.join(",")).expect("write header");
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| format!("{v}")).collect();
        writeln!(f, "{}", line.join(",")).expect("write row");
    }
    path
}

/// Measures the real per-tuple cost of the robust incremental update at
/// dimension `d` with `p` components: the calibration input for the
/// cluster simulator's dimension-scaling curve.
pub fn measure_update_cost(d: usize, p: usize, n_tuples: usize) -> f64 {
    let cfg = PcaConfig::new(d, p)
        .with_memory(5000)
        .with_init_size(2 * p + 10);
    let mut pca = RobustPca::new(cfg);
    let workload = PlantedSubspace::new(d, p, 0.05);
    let mut rng = StdRng::seed_from_u64(1234);
    // Warm up past initialization.
    for _ in 0..(2 * p + 20) {
        pca.update(&workload.sample(&mut rng)).expect("finite");
    }
    // Pre-generate so the generator cost stays out of the measurement.
    let samples = workload.sample_batch(&mut rng, n_tuples);
    let t0 = Instant::now();
    for x in &samples {
        pca.update(x).expect("finite");
    }
    t0.elapsed().as_secs_f64() / n_tuples as f64
}

/// Measures the update-cost curve over the paper's dimension range
/// (Fig. 7's 250–2000) for feeding
/// [`spca_cluster::CostModel::with_measurements`].
pub fn calibrate_dimension_curve(dims: &[usize], p: usize) -> Vec<(usize, f64)> {
    dims.iter()
        .map(|&d| {
            // Fewer samples at larger d keeps calibration under a minute.
            let n = (200_000 / d).clamp(50, 2000);
            (d, measure_update_cost(d, p, n))
        })
        .collect()
}

/// Pretty-prints a table of `(x, series...)` rows.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<f64>]) {
    println!("\n=== {title} ===");
    let widths: Vec<usize> = header.iter().map(|h| h.len().max(12)).collect();
    let head: Vec<String> = header
        .iter()
        .zip(&widths)
        .map(|(h, w)| format!("{h:>w$}"))
        .collect();
    println!("{}", head.join(" "));
    for row in rows {
        let cells: Vec<String> = row
            .iter()
            .zip(&widths)
            .map(|(v, w)| {
                if v.abs() >= 1000.0 || (*v != 0.0 && v.abs() < 0.01) {
                    format!("{v:>w$.3e}")
                } else {
                    format!("{v:>w$.3}")
                }
            })
            .collect();
        println!("{}", cells.join(" "));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn update_cost_is_positive_and_reasonable() {
        let t = measure_update_cost(64, 3, 100);
        assert!(t > 0.0 && t < 0.1, "per-tuple cost {t}");
    }

    #[test]
    fn cost_grows_with_dimension() {
        let t_small = measure_update_cost(32, 3, 150);
        let t_big = measure_update_cost(256, 3, 150);
        assert!(t_big > t_small, "{t_big} vs {t_small}");
    }

    #[test]
    fn csv_written_under_figures() {
        let p = write_csv("selftest.csv", &["a", "b"], &[vec![1.0, 2.0]]);
        let content = std::fs::read_to_string(&p).unwrap();
        assert!(content.starts_with("a,b\n1,2"));
        std::fs::remove_file(p).ok();
    }
}
