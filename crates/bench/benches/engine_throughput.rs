//! End-to-end dataflow throughput: the fusion ablation (§III-D's "Fusion
//! operators … give significant decrease of latency and increase in
//! throughput") measured on the real engine with a fixed tuple budget.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::PcaConfig;
use spca_engine::{AppConfig, ParallelPcaApp, SyncStrategy};
use spca_spectra::PlantedSubspace;
use spca_streams::ops::GeneratorSource;
use spca_streams::Engine;
use std::sync::Arc;

const DIM: usize = 250;
const TUPLES: u64 = 2000;

fn run_once(n_engines: usize, fuse: bool) -> u64 {
    run_once_batched(n_engines, fuse, spca_streams::DEFAULT_BATCH_SIZE)
}

fn run_once_batched(n_engines: usize, fuse: bool, batch: usize) -> u64 {
    let pca = PcaConfig::new(DIM, 5).with_memory(5000).with_init_size(20);
    let mut cfg = AppConfig::new(n_engines, pca);
    cfg.fuse = fuse;
    cfg.batch_size = batch;
    cfg.sync = SyncStrategy::None;
    let w = PlantedSubspace::new(DIM, 5, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(3)));
    let source = Box::new(
        GeneratorSource::new(move |_| Some((w.sample(&mut *rng.lock()), None)))
            .with_max_tuples(TUPLES),
    );
    let (g, _h) = ParallelPcaApp::build(&cfg, source);
    let report = Engine::run(g);
    report.tuples_in_matching("pca-")
}

fn bench_fusion(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_fusion");
    g.sample_size(10);
    g.throughput(Throughput::Elements(TUPLES));
    for (name, fuse) in [("fused", true), ("unfused", false)] {
        g.bench_with_input(BenchmarkId::from_parameter(name), &fuse, |b, &fuse| {
            b.iter(|| {
                let n = run_once(2, fuse);
                assert_eq!(n, TUPLES);
            })
        });
    }
    g.finish();
}

fn bench_engine_counts(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_parallelism");
    g.sample_size(10);
    g.throughput(Throughput::Elements(TUPLES));
    for n in [1usize, 2, 4] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let got = run_once(n, false);
                assert_eq!(got, TUPLES);
            })
        });
    }
    g.finish();
}

/// The transport ablation: per-tuple channel sends (batch size 1, the
/// pre-frame transport) against the batched frame transport, on the
/// unfused 2-engine graph where every data tuple crosses a PE boundary.
fn bench_transport_batching(c: &mut Criterion) {
    let mut g = c.benchmark_group("engine_transport_batch");
    g.sample_size(10);
    g.throughput(Throughput::Elements(TUPLES));
    for batch in [1usize, 8, spca_streams::DEFAULT_BATCH_SIZE] {
        g.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                let n = run_once_batched(2, false, batch);
                assert_eq!(n, TUPLES);
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_fusion,
    bench_engine_counts,
    bench_transport_batching
);
criterion_main!(benches);
