//! Cost of synchronizing two eigensystems (paper eq. 15–16) — §III-B: "the
//! synchronization implies the computation time overhead caused by solving
//! the eigenproblem of joined matrices, which is the most
//! computation-intensive operation of the algorithm". This number fixes
//! the cluster simulator's `sync_anchor_s`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::batch::batch_pca;
use spca_core::{merge, EigenSystem};
use spca_spectra::PlantedSubspace;

fn eigensystem(d: usize, p: usize, seed: u64) -> EigenSystem {
    let w = PlantedSubspace::new(d, p, 0.05);
    let mut rng = StdRng::seed_from_u64(seed);
    let data = w.sample_batch(&mut rng, 3 * p + 30);
    batch_pca(&data, p).expect("batch fit")
}

fn bench_merge(c: &mut Criterion) {
    let mut g = c.benchmark_group("eigensystem_merge");
    g.sample_size(20);
    for d in [250usize, 1000, 2000] {
        for p in [5usize, 10] {
            let a = eigensystem(d, p, 1);
            let b2 = eigensystem(d, p, 2);
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("d{d}_p{p}")),
                &(a, b2),
                |bch, (a, b2)| bch.iter(|| merge(a, b2).expect("compatible")),
            );
        }
    }
    g.finish();
}

fn bench_merge_chain(c: &mut Criterion) {
    // A full ring pass: n-1 sequential merges (what the hub does for the
    // global estimate).
    let mut g = c.benchmark_group("merge_chain");
    g.sample_size(10);
    let d = 500;
    let systems: Vec<EigenSystem> = (0..8).map(|i| eigensystem(d, 5, 10 + i)).collect();
    g.bench_function("eight_way", |b| {
        b.iter(|| spca_core::merge::merge_all(&systems).expect("compatible"))
    });
    g.finish();
}

criterion_group!(benches, bench_merge, bench_merge_chain);
criterion_main!(benches);
