//! Fig. 1 companion bench: what robustness costs per tuple, across
//! ρ-functions and contamination levels — the ρ/δ ablation DESIGN.md calls
//! out. Robust weighting adds one residual evaluation per tuple but *skips*
//! the SVD entirely for hard-rejected outliers, so heavier contamination
//! can make the robust path cheaper, not slower.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::{PcaConfig, RhoKind, RobustPca};
use spca_spectra::outliers::{OutlierInjector, OutlierKind};
use spca_spectra::PlantedSubspace;

const D: usize = 500;
const P: usize = 5;

fn stream(contamination: f64, n: usize) -> Vec<Vec<f64>> {
    let w = PlantedSubspace::new(D, P, 0.05);
    let inj = OutlierInjector::new(contamination).only(OutlierKind::CosmicRay);
    let mut rng = StdRng::seed_from_u64(9);
    (0..n)
        .map(|_| {
            let mut x = w.sample(&mut rng);
            inj.maybe_contaminate(&mut rng, &mut x);
            x
        })
        .collect()
}

fn prepared(rho: RhoKind) -> RobustPca {
    let cfg = PcaConfig::new(D, P)
        .with_memory(5000)
        .with_init_size(2 * P + 10)
        .with_rho(rho);
    let mut pca = RobustPca::new(cfg);
    let warm = stream(0.0, 2 * P + 20);
    for x in &warm {
        pca.update(x).expect("finite");
    }
    pca
}

fn bench_rho_kinds(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_by_rho");
    g.sample_size(20);
    let clean = stream(0.0, 256);
    for (name, rho) in [
        ("classical", RhoKind::Classical),
        ("bisquare", RhoKind::Bisquare(9.0)),
        ("huber", RhoKind::Huber(9.0)),
        ("welsch", RhoKind::Welsch(9.0)),
    ] {
        let mut pca = prepared(rho);
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(name), &name, |b, _| {
            b.iter(|| {
                let x = &clean[i % clean.len()];
                i += 1;
                pca.update(x).expect("finite")
            })
        });
    }
    g.finish();
}

fn bench_contamination(c: &mut Criterion) {
    let mut g = c.benchmark_group("update_by_contamination");
    g.sample_size(20);
    for pct in [0usize, 10, 50] {
        let data = stream(pct as f64 / 100.0, 256);
        let mut pca = prepared(RhoKind::Bisquare(9.0));
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(pct), &pct, |b, _| {
            b.iter(|| {
                let x = &data[i % data.len()];
                i += 1;
                pca.update(x).expect("finite")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rho_kinds, bench_contamination);
criterion_main!(benches);
