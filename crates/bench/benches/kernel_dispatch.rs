//! Dispatched vs. forced-scalar kernel timings under criterion — the
//! continuously-tracked companion of the recorded `BENCH_kernels.json`
//! artifact (which is produced by the `fig_kernels` binary).
//!
//! Each group pins the backend via the process-wide override before its
//! iterations run, so a single `cargo bench` reports both columns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use spca_linalg::kernels::{self, Backend};
use std::hint::black_box;

const GEMM_K: usize = 32;
const GEMM_W: usize = 32;

fn fill(n: usize, phase: f64) -> Vec<f64> {
    (0..n).map(|i| (i as f64 * 0.37 + phase).sin()).collect()
}

/// Backends to measure: scalar always, the SIMD path when the CPU has it.
fn backends() -> Vec<Backend> {
    let mut v = vec![Backend::Scalar];
    if Backend::Avx2Fma.available() {
        v.push(Backend::Avx2Fma);
    }
    v
}

fn bench_dot(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_dispatch/dot");
    g.sample_size(20);
    for be in backends() {
        for d in [256usize, 1000, 4000] {
            let a = fill(d, 0.0);
            let b = fill(d, 1.0);
            kernels::set_backend_override(Some(be));
            g.throughput(Throughput::Elements(d as u64));
            g.bench_with_input(BenchmarkId::new(be.name(), d), &d, |bch, _| {
                bch.iter(|| black_box(kernels::dot(black_box(&a), black_box(&b))))
            });
            kernels::set_backend_override(None);
        }
    }
    g.finish();
}

fn bench_axpy(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_dispatch/axpy");
    g.sample_size(20);
    for be in backends() {
        for d in [256usize, 1000, 4000] {
            let x = fill(d, 0.0);
            let mut y = fill(d, 1.0);
            kernels::set_backend_override(Some(be));
            g.throughput(Throughput::Elements(d as u64));
            g.bench_with_input(BenchmarkId::new(be.name(), d), &d, |bch, _| {
                bch.iter(|| kernels::axpy(black_box(1.0000000001), black_box(&x), &mut y))
            });
            kernels::set_backend_override(None);
        }
    }
    g.finish();
}

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_dispatch/gemm");
    g.sample_size(20);
    for be in backends() {
        for d in [256usize, 1000, 4000] {
            let a = fill(d * GEMM_K, 0.0);
            let b = fill(GEMM_K * GEMM_W, 1.0);
            let mut out = vec![0.0; d * GEMM_W];
            kernels::set_backend_override(Some(be));
            g.throughput(Throughput::Elements((d * GEMM_K * GEMM_W) as u64));
            g.bench_with_input(BenchmarkId::new(be.name(), d), &d, |bch, _| {
                bch.iter(|| {
                    out.fill(0.0);
                    kernels::gemm_block(d, GEMM_K, GEMM_W, black_box(&a), black_box(&b), &mut out);
                    black_box(&out);
                })
            });
            kernels::set_backend_override(None);
        }
    }
    g.finish();
}

criterion_group!(benches, bench_dot, bench_axpy, bench_gemm);
criterion_main!(benches);
