//! Cost of the low-rank SVD that sits inside every streaming update
//! (`A ∈ R^{d×(p+1)}`, paper eq. 1–3) — "the most computation-intensive
//! operation of the algorithm" per §III-B. Also benches the QR
//! re-orthonormalization the merge path relies on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_linalg::rng::fill_standard_normal;
use spca_linalg::{qr, svd, Mat};

fn nearly_orthogonal_factor(d: usize, p: usize, seed: u64) -> Mat {
    // The streaming factor's leading p columns come from an orthonormal
    // basis; build that shape rather than a generic random matrix.
    let mut rng = StdRng::seed_from_u64(seed);
    let mut raw = Mat::zeros(d, p);
    fill_standard_normal(&mut rng, raw.as_mut_slice());
    let q = qr::orthonormalize(&raw).expect("full rank");
    let mut a = Mat::zeros(d, p + 1);
    for j in 0..p {
        let scale = 2.0 * 0.8f64.powi(j as i32);
        for (o, &v) in a.col_mut(j).iter_mut().zip(q.col(j)) {
            *o = scale * v;
        }
    }
    let mut last = vec![0.0; d];
    fill_standard_normal(&mut rng, &mut last);
    a.col_mut(p).copy_from_slice(&last);
    a
}

fn bench_update_svd(c: &mut Criterion) {
    let mut g = c.benchmark_group("thin_svd_update_factor");
    g.sample_size(30);
    for d in [250usize, 1000, 2000] {
        for p in [5usize, 20] {
            let a = nearly_orthogonal_factor(d, p, 1);
            g.bench_with_input(
                BenchmarkId::from_parameter(format!("d{d}_p{p}")),
                &a,
                |b, a| b.iter(|| svd::thin_svd(a).expect("converges")),
            );
        }
    }
    g.finish();
}

fn bench_merge_factor_svd(c: &mut Criterion) {
    // Merge factor: d × (2p + 2).
    let mut g = c.benchmark_group("thin_svd_merge_factor");
    g.sample_size(20);
    for d in [250usize, 1000] {
        let p = 5;
        let left = nearly_orthogonal_factor(d, p, 2);
        let right = nearly_orthogonal_factor(d, p, 3);
        let a = left.hcat(&right).expect("same rows");
        g.bench_with_input(BenchmarkId::from_parameter(d), &a, |b, a| {
            b.iter(|| svd::thin_svd(a).expect("converges"))
        });
    }
    g.finish();
}

fn bench_qr(c: &mut Criterion) {
    let mut g = c.benchmark_group("thin_qr");
    g.sample_size(30);
    for d in [250usize, 1000] {
        let mut rng = StdRng::seed_from_u64(4);
        let mut a = Mat::zeros(d, 8);
        fill_standard_normal(&mut rng, a.as_mut_slice());
        g.bench_with_input(BenchmarkId::from_parameter(d), &a, |b, a| {
            b.iter(|| qr::thin_qr(a).expect("full rank"))
        });
    }
    g.finish();
}

fn bench_parallel_svd(c: &mut Criterion) {
    // The paper's future-work item: multithreaded SVD for high-dimensional
    // streams. Compare serial vs Brent–Luk parallel Jacobi at the largest
    // figure-7 dimension. (On a single-core host the parallel kernel falls
    // back or breaks even; the bench records whichever reality applies.)
    let mut g = c.benchmark_group("thin_svd_parallel");
    g.sample_size(10);
    let a = nearly_orthogonal_factor(2000, 20, 7);
    g.bench_function("serial", |b| {
        b.iter(|| svd::thin_svd(&a).expect("converges"))
    });
    for threads in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("par{threads}")),
            &threads,
            |b, &t| b.iter(|| spca_linalg::par_svd::par_thin_svd(&a, t).expect("converges")),
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_update_svd,
    bench_merge_factor_svd,
    bench_qr,
    bench_parallel_svd
);
criterion_main!(benches);
