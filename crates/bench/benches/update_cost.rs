//! Per-tuple cost of the streaming update — the number the whole system
//! design revolves around ("upon receiving a new input tuple, its internal
//! states are continuously updated by computationally inexpensive algebraic
//! operations") and the calibration input for the cluster simulator.
//!
//! Sweeps the paper's dimension range (Fig. 7's 250–2000) and the
//! eigensystem size p.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::{PcaConfig, RobustPca};
use spca_spectra::PlantedSubspace;

fn prepared_pca(d: usize, p: usize) -> (RobustPca, Vec<Vec<f64>>) {
    let cfg = PcaConfig::new(d, p)
        .with_memory(5000)
        .with_init_size(2 * p + 10);
    let mut pca = RobustPca::new(cfg);
    let w = PlantedSubspace::new(d, p, 0.05);
    let mut rng = StdRng::seed_from_u64(5);
    for _ in 0..(2 * p + 20) {
        pca.update(&w.sample(&mut rng)).expect("finite");
    }
    let samples = w.sample_batch(&mut rng, 256);
    (pca, samples)
}

fn bench_dimension(c: &mut Criterion) {
    let mut g = c.benchmark_group("robust_update_vs_dim");
    g.sample_size(20);
    for d in [250usize, 500, 1000, 2000] {
        let (mut pca, samples) = prepared_pca(d, 5);
        let mut i = 0usize;
        g.throughput(Throughput::Elements(1));
        g.bench_with_input(BenchmarkId::from_parameter(d), &d, |b, _| {
            b.iter(|| {
                let s = &samples[i % samples.len()];
                i += 1;
                pca.update(s).expect("finite")
            })
        });
    }
    g.finish();
}

fn bench_components(c: &mut Criterion) {
    let mut g = c.benchmark_group("robust_update_vs_p");
    g.sample_size(20);
    for p in [2usize, 5, 10, 20] {
        let (mut pca, samples) = prepared_pca(500, p);
        let mut i = 0usize;
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, _| {
            b.iter(|| {
                let s = &samples[i % samples.len()];
                i += 1;
                pca.update(s).expect("finite")
            })
        });
    }
    g.finish();
}

fn bench_masked_update(c: &mut Criterion) {
    let mut g = c.benchmark_group("masked_update");
    g.sample_size(20);
    let d = 500;
    let (mut pca, samples) = prepared_pca(d, 5);
    // 30% missing mask.
    let mask: Vec<bool> = (0..d).map(|i| i % 10 >= 3).collect();
    let mut i = 0usize;
    g.bench_function("gap_fill_30pct", |b| {
        b.iter(|| {
            let s = &samples[i % samples.len()];
            i += 1;
            pca.update_masked(s, &mask).expect("finite")
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_dimension,
    bench_components,
    bench_masked_update
);
criterion_main!(benches);
