//! The low-rank galaxy manifold generator.
//!
//! Each synthetic galaxy is driven by a handful of latent parameters —
//! stellar age, emission-line strength, AGN contribution, velocity offset,
//! brightness, redshift — so the population of spectra lives near a
//! low-dimensional manifold embedded in pixel space. This reproduces the
//! property the paper leans on for Fig. 4–5: "the inherently low-rank
//! galaxy manifold … means the galaxies are redundant in good
//! approximation", and it gives the test-suite ground truth the real
//! survey cannot.

use crate::continuum::continuum_curve;
use crate::lines::{add_line, ABSORPTION_LINES, EMISSION_LINES};
use crate::wavelength::WavelengthGrid;
use rand::Rng;
use spca_linalg::rng::standard_normal;

/// Latent parameters of one synthetic galaxy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GalaxyParams {
    /// Stellar population age proxy, 0 = star-forming … 1 = passive.
    pub age: f64,
    /// Emission-line strength (suppressed for passive galaxies).
    pub emission: f64,
    /// AGN-like boost of the high-ionization lines.
    pub agn: f64,
    /// Overall brightness multiplier.
    pub brightness: f64,
    /// Redshift.
    pub z: f64,
}

/// A generated spectrum with its ground truth.
#[derive(Debug, Clone)]
pub struct Spectrum {
    /// Flux per pixel on the generator's rest-frame grid.
    pub flux: Vec<f64>,
    /// Observed-bin mask (`true` = observed). All-true unless a gap model
    /// was applied.
    pub mask: Vec<bool>,
    /// The latent parameters that produced it.
    pub params: GalaxyParams,
}

/// Configuration and machinery for galaxy spectrum generation.
#[derive(Debug, Clone)]
pub struct GalaxyGenerator {
    grid: WavelengthGrid,
    lambdas: Vec<f64>,
    /// Per-pixel Gaussian noise σ.
    pub noise_sigma: f64,
    /// Maximum redshift drawn.
    pub z_max: f64,
    /// Fraction of passive (red) galaxies in the population.
    pub passive_fraction: f64,
}

impl GalaxyGenerator {
    /// A generator on a rest-frame grid of `n_pixels` covering redshifts up
    /// to `z_max`, with default SDSS-ish noise.
    pub fn new(n_pixels: usize, z_max: f64) -> Self {
        let grid = WavelengthGrid::rest_frame(n_pixels, z_max);
        let lambdas = grid.lambdas();
        GalaxyGenerator {
            grid,
            lambdas,
            noise_sigma: 0.02,
            z_max,
            passive_fraction: 0.4,
        }
    }

    /// The rest-frame grid used.
    pub fn grid(&self) -> &WavelengthGrid {
        &self.grid
    }

    /// Pixel count per spectrum.
    pub fn dim(&self) -> usize {
        self.lambdas.len()
    }

    /// Draws latent parameters from the population model.
    pub fn draw_params<R: Rng + ?Sized>(&self, rng: &mut R) -> GalaxyParams {
        let passive = rng.gen::<f64>() < self.passive_fraction;
        let age = if passive {
            0.7 + 0.3 * rng.gen::<f64>()
        } else {
            0.4 * rng.gen::<f64>()
        };
        // Emission anti-correlates with age.
        let emission = (1.0 - age) * (0.3 + 0.7 * rng.gen::<f64>());
        let agn = if rng.gen::<f64>() < 0.1 {
            rng.gen::<f64>()
        } else {
            0.0
        };
        let brightness = (0.5 + rng.gen::<f64>()).powi(2);
        let z = self.z_max * rng.gen::<f64>();
        GalaxyParams {
            age,
            emission,
            agn,
            brightness,
            z,
        }
    }

    /// Deterministic noiseless spectrum for given parameters.
    pub fn model(&self, p: &GalaxyParams) -> Vec<f64> {
        let mut flux = continuum_curve(&self.lambdas, p.age);
        // Emission lines, suppressed by age; AGN boosts [OIII] and the
        // Balmer lines. Strong star-formers show Hα at several times the
        // continuum (equivalent widths of tens to hundreds of Å), which is
        // what makes the emission pattern a principal component of the
        // population.
        for line in EMISSION_LINES {
            let boost = if line.name.starts_with("[OIII]") || line.name.starts_with("H") {
                1.0 + 2.0 * p.agn
            } else {
                1.0
            };
            add_line(&mut flux, &self.lambdas, line, 3.0 * p.emission * boost);
        }
        // Absorption features grow with age.
        for line in ABSORPTION_LINES {
            add_line(&mut flux, &self.lambdas, line, -0.35 * p.age);
        }
        for f in flux.iter_mut() {
            *f = (*f).max(0.0) * p.brightness;
        }
        flux
    }

    /// Draws one complete (ungapped) noisy spectrum.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Spectrum {
        let params = self.draw_params(rng);
        let mut flux = self.model(&params);
        for f in flux.iter_mut() {
            *f += self.noise_sigma * params.brightness * standard_normal(rng);
        }
        let mask = vec![true; flux.len()];
        Spectrum { flux, mask, params }
    }

    /// Draws a spectrum with the redshift-dependent coverage gap applied:
    /// pixels outside the observed window `[3800, 9200] Å / (1+z)` are
    /// masked (§II-D's systematic gap class).
    pub fn sample_with_coverage<R: Rng + ?Sized>(&self, rng: &mut R) -> Spectrum {
        let mut s = self.sample(rng);
        let (lo, hi) = self.grid.coverage_at_redshift(s.params.z, 3800.0, 9200.0);
        for (i, m) in s.mask.iter_mut().enumerate() {
            *m = i >= lo && i < hi;
        }
        s
    }
}

impl Spectrum {
    /// Number of observed pixels.
    pub fn n_observed(&self) -> usize {
        self.mask.iter().filter(|&&m| m).count()
    }

    /// True if every pixel is observed.
    pub fn is_complete(&self) -> bool {
        self.mask.iter().all(|&m| m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_core::batch::batch_pca;

    #[test]
    fn spectra_have_configured_dimension() {
        let g = GalaxyGenerator::new(300, 0.3);
        let mut rng = StdRng::seed_from_u64(50);
        let s = g.sample(&mut rng);
        assert_eq!(s.flux.len(), 300);
        assert!(s.is_complete());
    }

    #[test]
    fn model_is_deterministic() {
        let g = GalaxyGenerator::new(200, 0.3);
        let p = GalaxyParams {
            age: 0.5,
            emission: 0.3,
            agn: 0.0,
            brightness: 1.0,
            z: 0.1,
        };
        assert_eq!(g.model(&p), g.model(&p));
    }

    #[test]
    fn emission_galaxy_shows_halpha() {
        let g = GalaxyGenerator::new(1000, 0.3);
        let p_em = GalaxyParams {
            age: 0.0,
            emission: 1.0,
            agn: 0.0,
            brightness: 1.0,
            z: 0.0,
        };
        let p_pass = GalaxyParams {
            age: 1.0,
            emission: 0.0,
            agn: 0.0,
            brightness: 1.0,
            z: 0.0,
        };
        let em = g.model(&p_em);
        let pass = g.model(&p_pass);
        let ha_pix = g.grid().pixel_of(6562.8).unwrap();
        let side_pix = g.grid().pixel_of(6400.0).unwrap();
        // Emission galaxy: Hα well above local continuum.
        assert!(
            em[ha_pix] > 1.5 * em[side_pix],
            "Hα {} vs side {}",
            em[ha_pix],
            em[side_pix]
        );
        // Passive: no emission bump (absorption makes it at/below).
        assert!(pass[ha_pix] <= 1.05 * pass[side_pix]);
    }

    #[test]
    fn brightness_scales_flux() {
        let g = GalaxyGenerator::new(200, 0.3);
        let p1 = GalaxyParams {
            age: 0.5,
            emission: 0.2,
            agn: 0.0,
            brightness: 1.0,
            z: 0.0,
        };
        let p2 = GalaxyParams {
            brightness: 2.0,
            ..p1
        };
        let f1 = g.model(&p1);
        let f2 = g.model(&p2);
        for (a, b) in f1.iter().zip(&f2) {
            assert!((2.0 * a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn population_is_low_rank() {
        // The paper's premise: a few components capture almost all variance.
        let g = GalaxyGenerator::new(150, 0.0); // no redshift smearing
        let mut rng = StdRng::seed_from_u64(51);
        let data: Vec<Vec<f64>> = (0..400)
            .map(|_| {
                let mut s = g.sample(&mut rng);
                // Normalize brightness so rank reflects shape variance.
                let norm = spca_linalg::vecops::norm(&s.flux);
                spca_linalg::vecops::scale(&mut s.flux, 1.0 / norm);
                s.flux
            })
            .collect();
        let eig = batch_pca(&data, 8).unwrap();
        let explained: f64 = eig.values.iter().sum();
        let total: f64 = explained + eig.sigma2;
        assert!(
            explained / total > 0.9,
            "manifold not low-rank: top-8 explain {}",
            explained / total
        );
    }

    #[test]
    fn coverage_mask_correlates_with_redshift() {
        let g = GalaxyGenerator::new(400, 0.4);
        let mut rng = StdRng::seed_from_u64(52);
        let mut lo_z_cov = Vec::new();
        let mut hi_z_cov = Vec::new();
        for _ in 0..200 {
            let s = g.sample_with_coverage(&mut rng);
            if s.params.z < 0.1 {
                lo_z_cov.push(s.n_observed());
            } else if s.params.z > 0.3 {
                hi_z_cov.push(s.n_observed());
            }
        }
        assert!(!lo_z_cov.is_empty() && !hi_z_cov.is_empty());
        // Coverage windows at different z cover *different* pixels but the
        // windows never cover the whole rest grid.
        assert!(lo_z_cov.iter().all(|&n| n < 400));
        assert!(hi_z_cov.iter().all(|&n| n < 400));
    }

    #[test]
    fn draw_params_within_bounds() {
        let g = GalaxyGenerator::new(100, 0.35);
        let mut rng = StdRng::seed_from_u64(53);
        for _ in 0..500 {
            let p = g.draw_params(&mut rng);
            assert!((0.0..=1.0).contains(&p.age));
            assert!(p.emission >= 0.0 && p.emission <= 1.0);
            assert!(p.z >= 0.0 && p.z <= 0.35);
            assert!(p.brightness > 0.0);
        }
    }
}
