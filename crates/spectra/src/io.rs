//! CSV tuple I/O.
//!
//! The paper's InfoSphere application reads "local regular text or binary
//! file with CSV formatted tuples" and periodically saves intermediate
//! results to disk. These helpers implement the same formats: one
//! observation per line, comma-separated `f64` values, with an optional
//! leading mask column block for gappy data (`NaN` marks a missing bin on
//! read).

use std::io::{BufWriter, Write};
use std::path::Path;

/// Writes observations as CSV, one vector per line.
pub fn write_csv<P: AsRef<Path>>(path: P, data: &[Vec<f64>]) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    for row in data {
        write_row(&mut w, row)?;
    }
    w.flush()
}

fn write_row<W: Write>(w: &mut W, row: &[f64]) -> std::io::Result<()> {
    let mut first = true;
    for v in row {
        if !first {
            write!(w, ",")?;
        }
        first = false;
        if v.is_nan() {
            write!(w, "nan")?;
        } else {
            write!(w, "{v}")?;
        }
    }
    writeln!(w)
}

/// Writes gappy observations: missing bins are encoded as `nan`.
pub fn write_csv_masked<P: AsRef<Path>>(
    path: P,
    data: &[(Vec<f64>, Vec<bool>)],
) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    let mut row = Vec::new();
    for (flux, mask) in data {
        row.clear();
        row.extend(
            flux.iter()
                .zip(mask)
                .map(|(&v, &m)| if m { v } else { f64::NAN }),
        );
        write_row(&mut w, &row)?;
    }
    w.flush()
}

/// Reads CSV observations; `nan` / empty fields become missing bins.
/// Returns `(values, mask)` per row with missing bins set to 0.0.
pub fn read_csv<P: AsRef<Path>>(path: P) -> std::io::Result<Vec<(Vec<f64>, Vec<bool>)>> {
    Ok(parse_csv_str(&std::fs::read_to_string(path)?))
}

/// Parses CSV observations already in memory — the text layer under
/// [`read_csv`], used by the backfill runner to parse byte-range
/// partitions of a corpus without re-reading the file per partition.
pub fn parse_csv_str(text: &str) -> Vec<(Vec<f64>, Vec<bool>)> {
    let mut out = Vec::new();
    for line in text.lines() {
        if let Some(row) = parse_csv_line(line) {
            out.push(row);
        }
    }
    out
}

/// Parses one CSV line; `None` for blank and `#`-comment lines.
pub fn parse_csv_line(line: &str) -> Option<(Vec<f64>, Vec<bool>)> {
    let trimmed = line.trim();
    if trimmed.is_empty() || trimmed.starts_with('#') {
        return None;
    }
    let mut values = Vec::new();
    let mut mask = Vec::new();
    for field in trimmed.split(',') {
        let field = field.trim();
        match field.parse::<f64>() {
            Ok(v) if v.is_finite() => {
                values.push(v);
                mask.push(true);
            }
            _ => {
                values.push(0.0);
                mask.push(false);
            }
        }
    }
    Some((values, mask))
}

/// Writes an eigensystem snapshot: first line the eigenvalues, then one
/// line per eigenvector, then the mean — the paper's "intermediate
/// calculation results are periodically saved to the disk".
pub fn write_eigensystem_csv<P: AsRef<Path>>(
    path: P,
    values: &[f64],
    eigenvectors: &[Vec<f64>],
    mean: &[f64],
) -> std::io::Result<()> {
    let f = std::fs::File::create(path)?;
    let mut w = BufWriter::new(f);
    writeln!(w, "# eigenvalues")?;
    write_row(&mut w, values)?;
    writeln!(w, "# eigenvectors (one per line)")?;
    for ev in eigenvectors {
        write_row(&mut w, ev)?;
    }
    writeln!(w, "# mean")?;
    write_row(&mut w, mean)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spca_io_test_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn csv_round_trip() {
        let path = tmp("round");
        let data = vec![vec![1.0, 2.5, -3.0], vec![0.0, 1e-8, 4.0]];
        write_csv(&path, &data).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 2);
        for (row, (vals, mask)) in data.iter().zip(&back) {
            assert_eq!(row, vals);
            assert!(mask.iter().all(|&m| m));
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn masked_round_trip() {
        let path = tmp("masked");
        let data = vec![(vec![1.0, 2.0, 3.0], vec![true, false, true])];
        write_csv_masked(&path, &data).unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back[0].1, vec![true, false, true]);
        assert_eq!(back[0].0[0], 1.0);
        assert_eq!(back[0].0[1], 0.0); // missing → 0.0 placeholder
        assert_eq!(back[0].0[2], 3.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let path = tmp("comments");
        std::fs::write(&path, "# header\n\n1.0,2.0\n# trailing\n3.0,4.0\n").unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[1].0, vec![3.0, 4.0]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn eigensystem_snapshot_is_readable() {
        let path = tmp("eig");
        write_eigensystem_csv(
            &path,
            &[3.0, 1.0],
            &[vec![1.0, 0.0], vec![0.0, 1.0]],
            &[0.5, 0.5],
        )
        .unwrap();
        let back = read_csv(&path).unwrap();
        assert_eq!(back.len(), 4); // values + 2 vectors + mean
        assert_eq!(back[0].0, vec![3.0, 1.0]);
        std::fs::remove_file(path).ok();
    }
}
