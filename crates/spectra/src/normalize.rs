//! Spectrum normalization (§II-D).
//!
//! PCA presumes the Euclidean metric measures similarity; a galaxy twice as
//! bright must not be "far" from itself. Every spectrum is therefore
//! normalized before entering the stream. With gaps this is subtle — the
//! norm over observed pixels is biased low — so the masked variant
//! normalizes relative to the coverage-weighted norm, and the full
//! correction (fitting a scale against the current eigenbasis) lives in
//! `spca-core::gaps::masked_scale_and_coefficients`.

use spca_linalg::vecops;

/// Normalizes a complete spectrum to unit Euclidean norm in place.
/// Returns the prior norm (0 for a zero spectrum, which is left unchanged).
pub fn unit_norm(flux: &mut [f64]) -> f64 {
    vecops::normalize(flux)
}

/// Normalizes a gappy spectrum so that its *density* (norm² per observed
/// pixel) matches what a complete unit-norm spectrum of the same length
/// would have. Returns the applied scale factor (1.0 if nothing observed).
pub fn unit_norm_masked(flux: &mut [f64], mask: &[bool]) -> f64 {
    assert_eq!(flux.len(), mask.len());
    let d = flux.len();
    let n_obs = mask.iter().filter(|&&m| m).count();
    if n_obs == 0 {
        return 1.0;
    }
    let norm2_obs: f64 = flux
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(f, _)| f * f)
        .sum();
    if norm2_obs <= 0.0 {
        return 1.0;
    }
    // Target: norm²_obs == n_obs/d after scaling, so a complete spectrum
    // would come out exactly unit norm.
    let target = n_obs as f64 / d as f64;
    let scale = (target / norm2_obs).sqrt();
    vecops::scale(flux, scale);
    scale
}

/// Normalizes to unit median of the observed flux — the photometric
/// convention used for continuum-relative features. Returns the scale
/// applied (1.0 for degenerate input).
pub fn median_norm(flux: &mut [f64], mask: &[bool]) -> f64 {
    assert_eq!(flux.len(), mask.len());
    let mut obs: Vec<f64> = flux
        .iter()
        .zip(mask)
        .filter(|(_, &m)| m)
        .map(|(f, _)| *f)
        .collect();
    if obs.is_empty() {
        return 1.0;
    }
    obs.sort_by(|a, b| a.partial_cmp(b).expect("finite flux"));
    let med = if obs.len() % 2 == 1 {
        obs[obs.len() / 2]
    } else {
        0.5 * (obs[obs.len() / 2 - 1] + obs[obs.len() / 2])
    };
    if med.abs() < 1e-300 {
        return 1.0;
    }
    let scale = 1.0 / med;
    vecops::scale(flux, scale);
    scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_norm_basic() {
        let mut f = vec![3.0, 4.0];
        let n = unit_norm(&mut f);
        assert!((n - 5.0).abs() < 1e-12);
        assert!((vecops::norm(&f) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn masked_norm_is_brightness_invariant() {
        // Two spectra identical up to brightness must normalize to the same
        // vector, even with gaps.
        let base = vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mask = vec![true, true, false, true, true, false];
        let mut a = base.clone();
        let mut b: Vec<f64> = base.iter().map(|v| 3.7 * v).collect();
        unit_norm_masked(&mut a, &mask);
        unit_norm_masked(&mut b, &mask);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn masked_norm_complete_equals_unit_norm() {
        let mut a = vec![1.0, -2.0, 2.0];
        let mut b = a.clone();
        unit_norm(&mut a);
        unit_norm_masked(&mut b, &[true, true, true]);
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn masked_norm_density_matches() {
        // After masked normalization, norm² over observed pixels should be
        // n_obs/d.
        let mut f = vec![2.0, 5.0, 1.0, 7.0];
        let mask = vec![true, false, true, true];
        unit_norm_masked(&mut f, &mask);
        let n2: f64 = f
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .map(|(v, _)| v * v)
            .sum();
        assert!((n2 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_inputs_untouched() {
        let mut z = vec![0.0; 4];
        assert_eq!(unit_norm_masked(&mut z, &[true; 4]), 1.0);
        let mut f = vec![1.0, 2.0];
        assert_eq!(unit_norm_masked(&mut f, &[false, false]), 1.0);
        assert_eq!(f, vec![1.0, 2.0]);
    }

    #[test]
    fn median_norm_sets_median_to_one() {
        let mut f = vec![2.0, 4.0, 6.0, 8.0, 10.0];
        median_norm(&mut f, &[true; 5]);
        assert!((f[2] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn median_norm_ignores_masked_pixels() {
        let mut f = vec![1000.0, 2.0, 4.0, 6.0];
        let mask = vec![false, true, true, true];
        median_norm(&mut f, &mask);
        // Median of observed {2,4,6} = 4 → scaled by 1/4.
        assert!((f[2] - 1.0).abs() < 1e-12);
        assert!((f[0] - 250.0).abs() < 1e-9);
    }
}
