//! Gaussian performance workloads with planted structure.
//!
//! §III-D: "We used gaussian random data artificially enriched with
//! additional signals to test the performance of the Streaming PCA
//! engine." This module reproduces that workload — isotropic Gaussian
//! noise plus a planted low-rank signal subspace — with the ground-truth
//! basis exposed so accuracy can be verified alongside throughput.

use rand::Rng;
use spca_linalg::rng::{fill_standard_normal, standard_normal_vec};
use spca_linalg::{qr, vecops, Mat};

/// A planted `rank`-dimensional signal subspace inside `R^dim` with
/// isotropic noise.
#[derive(Debug, Clone)]
pub struct PlantedSubspace {
    /// Orthonormal signal basis (`dim × rank`).
    basis: Mat,
    /// Signal standard deviations per component (descending).
    signal_sigmas: Vec<f64>,
    /// Isotropic noise standard deviation.
    noise_sigma: f64,
}

impl PlantedSubspace {
    /// Plants a random `rank`-dimensional subspace in `dim` dimensions with
    /// component σ decaying geometrically from 4.0 by 0.8, plus isotropic
    /// noise `noise_sigma`. Deterministic given the (dim, rank) pair — use
    /// [`PlantedSubspace::with_basis`] for custom geometry.
    pub fn new(dim: usize, rank: usize, noise_sigma: f64) -> Self {
        assert!(rank >= 1 && dim > rank);
        // Deterministic pseudo-random basis from a fixed-seed generator so
        // workloads are reproducible across processes without threading a
        // seed through every constructor.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(0x5eed ^ (dim as u64) << 16 ^ rank as u64);
        let mut raw = Mat::zeros(dim, rank);
        fill_standard_normal(&mut rng, raw.as_mut_slice());
        let basis = qr::orthonormalize(&raw).expect("random matrix is full rank");
        let signal_sigmas = (0..rank).map(|k| 4.0 * 0.8f64.powi(k as i32)).collect();
        PlantedSubspace {
            basis,
            signal_sigmas,
            noise_sigma,
        }
    }

    /// Plants an explicitly given orthonormal basis.
    pub fn with_basis(basis: Mat, signal_sigmas: Vec<f64>, noise_sigma: f64) -> Self {
        assert_eq!(basis.cols(), signal_sigmas.len());
        PlantedSubspace {
            basis,
            signal_sigmas,
            noise_sigma,
        }
    }

    /// Ambient dimensionality.
    pub fn dim(&self) -> usize {
        self.basis.rows()
    }

    /// Signal rank.
    pub fn rank(&self) -> usize {
        self.basis.cols()
    }

    /// The ground-truth signal basis.
    pub fn basis(&self) -> &Mat {
        &self.basis
    }

    /// Ground-truth eigenvalues of the population covariance restricted to
    /// the signal subspace: σ_k² + noise².
    pub fn true_eigenvalues(&self) -> Vec<f64> {
        self.signal_sigmas
            .iter()
            .map(|s| s * s + self.noise_sigma * self.noise_sigma)
            .collect()
    }

    /// Draws one observation.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<f64> {
        let coeffs: Vec<f64> = self
            .signal_sigmas
            .iter()
            .map(|&s| s * spca_linalg::rng::standard_normal(rng))
            .collect();
        let mut x = self
            .basis
            .matvec(&coeffs)
            .expect("coeff length matches basis");
        if self.noise_sigma > 0.0 {
            let noise = standard_normal_vec(rng, x.len());
            vecops::axpy(self.noise_sigma, &noise, &mut x);
        }
        x
    }

    /// Draws a batch of observations.
    pub fn sample_batch<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<Vec<f64>> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_core::batch::batch_pca;
    use spca_core::metrics::subspace_distance;

    #[test]
    fn samples_have_right_dimension() {
        let w = PlantedSubspace::new(50, 3, 0.1);
        let mut rng = StdRng::seed_from_u64(80);
        assert_eq!(w.sample(&mut rng).len(), 50);
        assert_eq!(w.dim(), 50);
        assert_eq!(w.rank(), 3);
    }

    #[test]
    fn batch_pca_recovers_planted_basis() {
        let w = PlantedSubspace::new(30, 3, 0.05);
        let mut rng = StdRng::seed_from_u64(81);
        let data = w.sample_batch(&mut rng, 2000);
        let eig = batch_pca(&data, 3).unwrap();
        let dist = subspace_distance(&eig.basis, w.basis()).unwrap();
        assert!(dist < 0.1, "recovered basis distance {dist}");
        let truth = w.true_eigenvalues();
        for (k, (&ev, &tv)) in eig.values.iter().zip(&truth).enumerate().take(3) {
            let rel = (ev - tv).abs() / tv;
            assert!(rel < 0.2, "λ{k}: {ev} vs {tv}");
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let a = PlantedSubspace::new(20, 2, 0.1);
        let b = PlantedSubspace::new(20, 2, 0.1);
        assert!(a.basis().sub(b.basis()).unwrap().max_abs() < 1e-15);
    }

    #[test]
    fn different_shapes_give_different_bases() {
        let a = PlantedSubspace::new(20, 2, 0.1);
        let b = PlantedSubspace::new(20, 3, 0.1);
        // Compare the first columns: overwhelmingly unlikely to coincide.
        let d: f64 = a
            .basis()
            .col(0)
            .iter()
            .zip(b.basis().col(0))
            .map(|(x, y)| (x - y).abs())
            .sum();
        assert!(d > 1e-6);
    }

    #[test]
    fn noise_free_samples_live_in_subspace() {
        let w = PlantedSubspace::new(15, 2, 0.0);
        let mut rng = StdRng::seed_from_u64(82);
        for _ in 0..50 {
            let x = w.sample(&mut rng);
            // Project out the basis: residual must vanish.
            let coeffs = w.basis().tr_matvec(&x).unwrap();
            let rec = w.basis().matvec(&coeffs).unwrap();
            let r = vecops::sub(&x, &rec);
            assert!(vecops::norm(&r) < 1e-10);
        }
    }
}
