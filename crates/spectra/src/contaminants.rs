//! Astrophysical contaminants: the things a galaxy-spectrum stream is
//! actually polluted with.
//!
//! The paper's robust estimator exists because survey pipelines
//! misclassify objects: quasars, stars and sky-subtraction failures end up
//! in the galaxy stream. Unlike the synthetic spike outliers of
//! [`crate::outliers`], these contaminants are *structured* — smooth
//! spectra with their own features — which is a harder test of robustness
//! than raw spikes: they are only outliers relative to the galaxy
//! manifold, not relative to a noise model.

use crate::lines::{add_line, gaussian_profile, Line};
use crate::wavelength::WavelengthGrid;
use rand::Rng;
use spca_linalg::rng::standard_normal;

/// Broad quasar emission lines in the optical window (rest frame).
const QUASAR_LINES: &[Line] = &[
    Line {
        name: "MgII2798",
        lambda: 2798.0,
        width: 40.0,
        emission: true,
    },
    Line {
        name: "Hgamma_b",
        lambda: 4340.5,
        width: 35.0,
        emission: true,
    },
    Line {
        name: "Hbeta_b",
        lambda: 4861.3,
        width: 40.0,
        emission: true,
    },
    Line {
        name: "Halpha_b",
        lambda: 6562.8,
        width: 50.0,
        emission: true,
    },
];

/// A quasar spectrum: blue power-law continuum with broad emission lines,
/// redshifted into the observed grid.
pub fn quasar<R: Rng + ?Sized>(rng: &mut R, grid: &WavelengthGrid, z: f64) -> Vec<f64> {
    let lambdas = grid.lambdas();
    let mut flux: Vec<f64> = lambdas
        .iter()
        .map(|&l| {
            let rest = l / (1.0 + z);
            (rest / 4000.0).powf(-0.7)
        })
        .collect();
    // Broad lines at observed positions: shift the catalog by (1+z) by
    // evaluating the profile at rest wavelength.
    for line in QUASAR_LINES {
        let strength = 1.5 + rng.gen::<f64>();
        for (f, &l) in flux.iter_mut().zip(&lambdas) {
            let rest = l / (1.0 + z);
            *f += strength * gaussian_profile(rest, line.lambda, line.width);
        }
    }
    for f in flux.iter_mut() {
        *f += 0.03 * standard_normal(rng);
        *f = f.max(0.0);
    }
    flux
}

/// A stellar spectrum: Planck-like continuum for an effective temperature
/// plus hydrogen absorption (A/F stars) or molecular-band dips (M stars).
pub fn star<R: Rng + ?Sized>(rng: &mut R, grid: &WavelengthGrid, teff: f64) -> Vec<f64> {
    let lambdas = grid.lambdas();
    // Planck shape in wavelength, normalized near 5500 Å.
    let planck = |l_angstrom: f64| -> f64 {
        let l = l_angstrom * 1e-10;
        let hc_over_k = 0.0143877; // m·K
        let x = hc_over_k / (l * teff);
        1.0 / (l.powi(5) * (x.exp() - 1.0))
    };
    let norm = planck(5500.0);
    let mut flux: Vec<f64> = lambdas.iter().map(|&l| planck(l) / norm).collect();
    if teff > 6500.0 {
        // Balmer absorption for hot stars.
        for &center in &[6562.8, 4861.3, 4340.5, 4101.7] {
            let line = Line {
                name: "balmer",
                lambda: center,
                width: 12.0,
                emission: false,
            };
            add_line(&mut flux, &lambdas, &line, -0.4);
        }
    } else if teff < 4000.0 {
        // TiO band heads for cool stars: broad saw-tooth dips.
        for &(start, depth) in &[(5167.0, 0.3), (5448.0, 0.25), (6158.0, 0.35), (7053.0, 0.4)] {
            for (f, &l) in flux.iter_mut().zip(&lambdas) {
                if l >= start && l < start + 250.0 {
                    let t = (l - start) / 250.0;
                    *f *= 1.0 - depth * (1.0 - t);
                }
            }
        }
    }
    for f in flux.iter_mut() {
        *f += 0.02 * standard_normal(rng);
        *f = f.max(0.0);
    }
    flux
}

/// A sky-subtraction failure: the object flux is overwhelmed by the OH
/// airglow forest (narrow emission spikes crowding the red end).
pub fn sky_residual<R: Rng + ?Sized>(rng: &mut R, grid: &WavelengthGrid) -> Vec<f64> {
    let lambdas = grid.lambdas();
    let mut flux = vec![0.0; lambdas.len()];
    // OH lines roughly every 15–40 Å redward of ~6800 Å.
    let mut l = 6800.0 + 30.0 * rng.gen::<f64>();
    let max_l = lambdas.last().copied().unwrap_or(9200.0);
    while l < max_l {
        let strength = 2.0 + 6.0 * rng.gen::<f64>();
        let line = Line {
            name: "OH",
            lambda: l,
            width: 2.5,
            emission: true,
        };
        add_line(&mut flux, &lambdas, &line, strength);
        l += 15.0 + 25.0 * rng.gen::<f64>();
    }
    for f in flux.iter_mut() {
        *f += 0.05 * standard_normal(rng);
    }
    flux
}

/// Kinds of structured contaminants.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContaminantKind {
    /// Misclassified quasar.
    Quasar,
    /// Misclassified star (hot or cool, drawn at random).
    Star,
    /// Sky-subtraction failure.
    Sky,
}

/// Draws one contaminant spectrum of the given kind on `grid`.
pub fn draw<R: Rng + ?Sized>(
    rng: &mut R,
    grid: &WavelengthGrid,
    kind: ContaminantKind,
) -> Vec<f64> {
    match kind {
        ContaminantKind::Quasar => {
            let z = 0.5 + 1.5 * rng.gen::<f64>();
            quasar(rng, grid, z)
        }
        ContaminantKind::Star => {
            let teff = if rng.gen::<bool>() {
                7000.0 + 3000.0 * rng.gen::<f64>()
            } else {
                3000.0 + 900.0 * rng.gen::<f64>()
            };
            star(rng, grid, teff)
        }
        ContaminantKind::Sky => sky_residual(rng, grid),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn grid() -> WavelengthGrid {
        WavelengthGrid::sdss_like(800)
    }

    #[test]
    fn quasar_has_broad_halpha() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(1);
        let z = 0.2;
        let q = quasar(&mut rng, &g, z);
        let peak_pix = g.pixel_of(6562.8 * (1.0 + z)).unwrap();
        let side_pix = g.pixel_of(6100.0 * (1.0 + z)).unwrap();
        assert!(
            q[peak_pix] > q[side_pix] + 0.5,
            "{} vs {}",
            q[peak_pix],
            q[side_pix]
        );
    }

    #[test]
    fn hot_star_is_blue_cool_star_is_red() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(2);
        let hot = star(&mut rng, &g, 9000.0);
        let cool = star(&mut rng, &g, 3300.0);
        let blue = g.pixel_of(4200.0).unwrap();
        let red = g.pixel_of(8500.0).unwrap();
        assert!(hot[blue] > hot[red], "hot star should rise to the blue");
        assert!(cool[red] > cool[blue], "cool star should rise to the red");
    }

    #[test]
    fn sky_residual_lives_in_the_red() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(3);
        let s = sky_residual(&mut rng, &g);
        let blue_energy: f64 = s
            .iter()
            .zip(g.lambdas())
            .filter(|(_, l)| *l < 6000.0)
            .map(|(v, _)| v * v)
            .sum();
        let red_energy: f64 = s
            .iter()
            .zip(g.lambdas())
            .filter(|(_, l)| *l > 7000.0)
            .map(|(v, _)| v * v)
            .sum();
        assert!(
            red_energy > 20.0 * blue_energy,
            "red {red_energy} blue {blue_energy}"
        );
    }

    #[test]
    fn all_kinds_are_finite_and_nonempty() {
        let g = grid();
        let mut rng = StdRng::seed_from_u64(4);
        for kind in [
            ContaminantKind::Quasar,
            ContaminantKind::Star,
            ContaminantKind::Sky,
        ] {
            let s = draw(&mut rng, &g, kind);
            assert_eq!(s.len(), 800);
            assert!(s.iter().all(|v| v.is_finite()), "{kind:?}");
            assert!(s.iter().any(|&v| v != 0.0), "{kind:?}");
        }
    }

    #[test]
    fn robust_pca_rejects_structured_contaminants() {
        // The harder version of Fig. 1: contaminants are smooth spectra,
        // not spikes. The robust engine must still flag most of them once
        // converged on the galaxy manifold.
        use crate::generator::GalaxyGenerator;
        use crate::normalize::unit_norm;
        use spca_core::{PcaConfig, RobustPca};

        let gal = GalaxyGenerator::new(300, 0.25);
        let g = gal.grid().clone();
        let mut rng = StdRng::seed_from_u64(5);
        let cfg = PcaConfig::new(300, 4).with_memory(3000).with_init_size(60);
        let mut pca = RobustPca::new(cfg);
        // Converge on clean galaxies.
        for _ in 0..3000 {
            let mut s = gal.sample(&mut rng);
            unit_norm(&mut s.flux);
            pca.update(&s.flux).unwrap();
        }
        // Now a contaminated tail.
        let mut flagged = 0;
        let mut total = 0;
        for i in 0..300 {
            let kind = match i % 3 {
                0 => ContaminantKind::Quasar,
                1 => ContaminantKind::Star,
                _ => ContaminantKind::Sky,
            };
            let mut x = draw(&mut rng, &g, kind);
            unit_norm(&mut x);
            let out = pca.update(&x).unwrap();
            total += 1;
            if out.outlier {
                flagged += 1;
            }
        }
        assert!(
            flagged * 10 >= total * 7,
            "only {flagged}/{total} structured contaminants flagged"
        );
    }
}
