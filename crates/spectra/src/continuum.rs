//! Galaxy continuum models.
//!
//! Real galaxy continua interpolate between two templates: a blue,
//! star-forming spectrum rising toward short wavelengths, and a red,
//! passive spectrum with a pronounced 4000 Å break. One latent "age"
//! parameter sliding between the two captures most continuum variance —
//! which is precisely the low-rank structure streaming PCA exploits.

/// Smooth 4000 Å break: a logistic step from `lo` (blue side) to `hi`
/// (red side) with transition width `width` Å.
fn break4000(lambda: f64, lo: f64, hi: f64, width: f64) -> f64 {
    let s = 1.0 / (1.0 + (-(lambda - 4000.0) / width).exp());
    lo + (hi - lo) * s
}

/// Blue star-forming continuum (normalized near 1 at 5500 Å): shallow
/// power-law rising to the blue with a weak 4000 Å break.
pub fn star_forming(lambda: f64) -> f64 {
    let pl = (lambda / 5500.0).powf(-1.2);
    pl * break4000(lambda, 0.85, 1.0, 150.0)
}

/// Red passive continuum (normalized near 1 at 5500 Å): declining to the
/// blue with a strong 4000 Å break.
pub fn passive(lambda: f64) -> f64 {
    let pl = (lambda / 5500.0).powf(0.8);
    pl * break4000(lambda, 0.35, 1.0, 80.0)
}

/// Interpolated continuum: `age` slides from 0 (star-forming) to 1
/// (passive).
pub fn continuum(lambda: f64, age: f64) -> f64 {
    let a = age.clamp(0.0, 1.0);
    (1.0 - a) * star_forming(lambda) + a * passive(lambda)
}

/// Evaluates the continuum over a wavelength array.
pub fn continuum_curve(lambdas: &[f64], age: f64) -> Vec<f64> {
    lambdas.iter().map(|&l| continuum(l, age)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_templates_normalized_near_5500() {
        assert!((star_forming(5500.0) - 1.0).abs() < 0.1);
        assert!((passive(5500.0) - 1.0).abs() < 0.1);
    }

    #[test]
    fn star_forming_is_blue() {
        assert!(star_forming(4000.0) > star_forming(8000.0));
    }

    #[test]
    fn passive_is_red_with_break() {
        assert!(passive(8000.0) > passive(4000.0));
        // Strong break: flux at 3800 much below 4200.
        assert!(passive(3800.0) < 0.6 * passive(4200.0));
    }

    #[test]
    fn age_interpolates_monotonically() {
        // At a blue wavelength the flux decreases with age.
        let l = 3900.0;
        let mut prev = continuum(l, 0.0);
        for i in 1..=10 {
            let c = continuum(l, i as f64 / 10.0);
            assert!(c <= prev + 1e-12);
            prev = c;
        }
    }

    #[test]
    fn age_clamped() {
        assert_eq!(continuum(5000.0, -1.0), continuum(5000.0, 0.0));
        assert_eq!(continuum(5000.0, 2.0), continuum(5000.0, 1.0));
    }

    #[test]
    fn continuum_positive_everywhere() {
        for i in 0..100 {
            let l = 3500.0 + 60.0 * i as f64;
            for a in [0.0, 0.3, 0.7, 1.0] {
                assert!(continuum(l, a) > 0.0, "λ={l} a={a}");
            }
        }
    }
}
