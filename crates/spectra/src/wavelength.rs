//! Wavelength grids.
//!
//! SDSS spectra are sampled on a uniform grid in log₁₀(λ) with pixel size
//! 10⁻⁴ dex covering roughly 3800–9200 Å. Rest-frame analyses resample to a
//! common rest grid; we model both with one type.

/// A uniform log₁₀-wavelength grid.
#[derive(Debug, Clone, PartialEq)]
pub struct WavelengthGrid {
    log_start: f64,
    log_step: f64,
    n: usize,
}

impl WavelengthGrid {
    /// A grid of `n` pixels starting at `start_angstrom`, uniform in
    /// log₁₀(λ) with step `log_step` dex.
    pub fn new(start_angstrom: f64, log_step: f64, n: usize) -> Self {
        assert!(start_angstrom > 0.0 && log_step > 0.0 && n > 0);
        WavelengthGrid {
            log_start: start_angstrom.log10(),
            log_step,
            n,
        }
    }

    /// The SDSS observed-frame grid (3800–9200 Å) at the standard 10⁻⁴ dex
    /// pixel, downsampled to `n` pixels.
    pub fn sdss_like(n: usize) -> Self {
        let lo = 3800.0_f64.log10();
        let hi = 9200.0_f64.log10();
        WavelengthGrid {
            log_start: lo,
            log_step: (hi - lo) / n as f64,
            n,
        }
    }

    /// A rest-frame grid wide enough that redshifts up to `z_max` keep the
    /// observed window inside it.
    pub fn rest_frame(n: usize, z_max: f64) -> Self {
        let lo = (3800.0 / (1.0 + z_max)).log10();
        let hi = 9200.0_f64.log10();
        WavelengthGrid {
            log_start: lo,
            log_step: (hi - lo) / n as f64,
            n,
        }
    }

    /// Number of pixels.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the grid is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Wavelength (Å) at pixel `i`.
    pub fn lambda(&self, i: usize) -> f64 {
        10f64.powf(self.log_start + self.log_step * i as f64)
    }

    /// All wavelengths.
    pub fn lambdas(&self) -> Vec<f64> {
        (0..self.n).map(|i| self.lambda(i)).collect()
    }

    /// The pixel index whose wavelength is nearest to `lambda`, or `None`
    /// if it falls outside the grid.
    pub fn pixel_of(&self, lambda: f64) -> Option<usize> {
        if lambda <= 0.0 {
            return None;
        }
        let f = (lambda.log10() - self.log_start) / self.log_step;
        let i = f.round();
        if i < 0.0 || i >= self.n as f64 {
            None
        } else {
            Some(i as usize)
        }
    }

    /// The sub-range of pixels observed when a rest-frame object at
    /// redshift `z` is viewed through a fixed observed window
    /// `[obs_lo, obs_hi]` Å: pixels of *this* (rest) grid falling inside
    /// `[obs_lo/(1+z), obs_hi/(1+z)]`.
    pub fn coverage_at_redshift(&self, z: f64, obs_lo: f64, obs_hi: f64) -> (usize, usize) {
        let rest_lo = obs_lo / (1.0 + z);
        let rest_hi = obs_hi / (1.0 + z);
        let mut lo = self.n;
        let mut hi = 0;
        for i in 0..self.n {
            let l = self.lambda(i);
            if l >= rest_lo && l <= rest_hi {
                lo = lo.min(i);
                hi = hi.max(i + 1);
            }
        }
        if lo >= hi {
            (0, 0)
        } else {
            (lo, hi)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sdss_grid_spans_advertised_range() {
        let g = WavelengthGrid::sdss_like(1000);
        assert!((g.lambda(0) - 3800.0).abs() < 1.0);
        assert!(g.lambda(999) < 9200.0);
        assert!(g.lambda(999) > 9100.0);
    }

    #[test]
    fn grid_is_monotone() {
        let g = WavelengthGrid::sdss_like(200);
        let l = g.lambdas();
        for w in l.windows(2) {
            assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn pixel_of_round_trips() {
        let g = WavelengthGrid::sdss_like(500);
        for i in [0, 10, 250, 499] {
            assert_eq!(g.pixel_of(g.lambda(i)), Some(i));
        }
    }

    #[test]
    fn pixel_of_out_of_range() {
        let g = WavelengthGrid::sdss_like(100);
        assert_eq!(g.pixel_of(100.0), None);
        assert_eq!(g.pixel_of(1e6), None);
        assert_eq!(g.pixel_of(-5.0), None);
    }

    #[test]
    fn redshift_coverage_shrinks_from_blue() {
        let g = WavelengthGrid::rest_frame(1000, 0.5);
        let (lo0, hi0) = g.coverage_at_redshift(0.0, 3800.0, 9200.0);
        let (lo5, hi5) = g.coverage_at_redshift(0.5, 3800.0, 9200.0);
        // Higher redshift sees bluer rest wavelengths: window moves left.
        assert!(lo5 < lo0, "lo {lo5} vs {lo0}");
        assert!(hi5 < hi0, "hi {hi5} vs {hi0}");
        assert!(hi0 > lo0 && hi5 > lo5);
    }

    #[test]
    fn rest_grid_contains_all_coverages() {
        let g = WavelengthGrid::rest_frame(800, 0.4);
        for zi in 0..=8 {
            let z = zi as f64 * 0.05;
            let (lo, hi) = g.coverage_at_redshift(z, 3800.0, 9200.0);
            assert!(hi > lo, "empty coverage at z={z}");
        }
    }
}
