//! Catalog of the strongest optical galaxy spectral lines.
//!
//! These are the "physically meaningful features" the paper's Fig. 5
//! eigenspectra develop: Balmer emission/absorption, the forbidden [O II] /
//! [O III] / [N II] / [S II] lines of star-forming galaxies and AGN, and
//! the stellar absorption features (Ca H&K, G-band, Mg b, Na D) of passive
//! galaxies. Wavelengths are vacuum rest-frame, in Å.

/// A spectral line.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Line {
    /// Conventional identifier.
    pub name: &'static str,
    /// Rest-frame wavelength in Å.
    pub lambda: f64,
    /// Typical intrinsic velocity width (Å at rest wavelength).
    pub width: f64,
    /// True for emission lines, false for absorption.
    pub emission: bool,
}

/// Emission lines of star-forming galaxies / AGN.
pub const EMISSION_LINES: &[Line] = &[
    Line {
        name: "[OII]3727",
        lambda: 3727.4,
        width: 4.0,
        emission: true,
    },
    Line {
        name: "Hbeta",
        lambda: 4861.3,
        width: 5.0,
        emission: true,
    },
    Line {
        name: "[OIII]4959",
        lambda: 4958.9,
        width: 4.0,
        emission: true,
    },
    Line {
        name: "[OIII]5007",
        lambda: 5006.8,
        width: 4.0,
        emission: true,
    },
    Line {
        name: "[NII]6548",
        lambda: 6548.1,
        width: 4.0,
        emission: true,
    },
    Line {
        name: "Halpha",
        lambda: 6562.8,
        width: 5.5,
        emission: true,
    },
    Line {
        name: "[NII]6583",
        lambda: 6583.4,
        width: 4.0,
        emission: true,
    },
    Line {
        name: "[SII]6716",
        lambda: 6716.4,
        width: 4.0,
        emission: true,
    },
    Line {
        name: "[SII]6731",
        lambda: 6730.8,
        width: 4.0,
        emission: true,
    },
];

/// Stellar absorption features of passive galaxies.
pub const ABSORPTION_LINES: &[Line] = &[
    Line {
        name: "CaK",
        lambda: 3933.7,
        width: 8.0,
        emission: false,
    },
    Line {
        name: "CaH",
        lambda: 3968.5,
        width: 8.0,
        emission: false,
    },
    Line {
        name: "Gband",
        lambda: 4304.4,
        width: 10.0,
        emission: false,
    },
    Line {
        name: "Hbeta_abs",
        lambda: 4861.3,
        width: 9.0,
        emission: false,
    },
    Line {
        name: "Mgb",
        lambda: 5175.4,
        width: 12.0,
        emission: false,
    },
    Line {
        name: "NaD",
        lambda: 5893.0,
        width: 10.0,
        emission: false,
    },
];

/// Gaussian line profile evaluated at wavelength `lambda` for a line
/// centered at `center` with standard-deviation width `width`.
#[inline]
pub fn gaussian_profile(lambda: f64, center: f64, width: f64) -> f64 {
    let d = (lambda - center) / width;
    (-0.5 * d * d).exp()
}

/// Adds a line (scaled by `amplitude`, positive = emission) onto `flux`
/// over the wavelengths `lambdas`.
pub fn add_line(flux: &mut [f64], lambdas: &[f64], line: &Line, amplitude: f64) {
    debug_assert_eq!(flux.len(), lambdas.len());
    // A Gaussian at 5 widths is < 4e-6: restrict the loop to that window.
    let lo = line.lambda - 5.0 * line.width;
    let hi = line.lambda + 5.0 * line.width;
    for (f, &l) in flux.iter_mut().zip(lambdas) {
        if l >= lo && l <= hi {
            *f += amplitude * gaussian_profile(l, line.lambda, line.width);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wavelength::WavelengthGrid;

    #[test]
    fn catalog_is_sorted_and_in_optical() {
        for set in [EMISSION_LINES, ABSORPTION_LINES] {
            for w in set.windows(2) {
                assert!(
                    w[1].lambda >= w[0].lambda,
                    "{} before {}",
                    w[1].name,
                    w[0].name
                );
            }
            for l in set {
                assert!(l.lambda > 3000.0 && l.lambda < 10000.0);
                assert!(l.width > 0.0);
            }
        }
    }

    #[test]
    fn profile_peaks_at_center() {
        assert_eq!(gaussian_profile(5000.0, 5000.0, 4.0), 1.0);
        assert!(gaussian_profile(5004.0, 5000.0, 4.0) < 1.0);
        assert!(gaussian_profile(5100.0, 5000.0, 4.0) < 1e-8);
    }

    #[test]
    fn add_line_injects_flux_at_right_pixel() {
        let g = WavelengthGrid::sdss_like(2000);
        let lambdas = g.lambdas();
        let mut flux = vec![0.0; 2000];
        let ha = EMISSION_LINES.iter().find(|l| l.name == "Halpha").unwrap();
        add_line(&mut flux, &lambdas, ha, 10.0);
        let peak = g.pixel_of(ha.lambda).unwrap();
        assert!(flux[peak] > 9.0, "peak flux {}", flux[peak]);
        // Energy is localized: far pixels untouched.
        assert_eq!(flux[0], 0.0);
        assert_eq!(flux[1999], 0.0);
    }

    #[test]
    fn absorption_subtracts() {
        let g = WavelengthGrid::sdss_like(2000);
        let lambdas = g.lambdas();
        let mut flux = vec![1.0; 2000];
        let mgb = ABSORPTION_LINES.iter().find(|l| l.name == "Mgb").unwrap();
        add_line(&mut flux, &lambdas, mgb, -0.5);
        let pix = g.pixel_of(mgb.lambda).unwrap();
        assert!(flux[pix] < 0.6);
    }
}
