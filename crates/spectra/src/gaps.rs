//! Missing-data mask generators (§II-D's two gap classes).
//!
//! "Some cause the loss of random snippets while others correlate with
//! physical properties of the sources." Random snippets model bad pixels
//! and masked sky lines; the systematic class is the redshift-dependent
//! coverage window, produced by
//! [`GalaxyGenerator::sample_with_coverage`](crate::generator::GalaxyGenerator::sample_with_coverage).

use rand::Rng;

/// Generates random-snippet masks: a configurable number of contiguous
/// runs of missing pixels at random positions.
#[derive(Debug, Clone)]
pub struct SnippetGaps {
    /// Expected number of gap runs per spectrum.
    pub runs: f64,
    /// Length range of each run (inclusive).
    pub run_len: (usize, usize),
}

impl SnippetGaps {
    /// Snippet model with `runs` expected runs of `lo..=hi` pixels each.
    pub fn new(runs: f64, lo: usize, hi: usize) -> Self {
        assert!(runs >= 0.0 && lo >= 1 && hi >= lo);
        SnippetGaps {
            runs,
            run_len: (lo, hi),
        }
    }

    /// Produces a mask of length `d` (`true` = observed) and applies no
    /// changes to the data itself.
    pub fn mask<R: Rng + ?Sized>(&self, rng: &mut R, d: usize) -> Vec<bool> {
        let mut mask = vec![true; d];
        // Poisson-ish: draw count from a simple geometric approximation by
        // repeated Bernoulli halving around the mean.
        let count = poisson_small(rng, self.runs);
        for _ in 0..count {
            let len = rng.gen_range(self.run_len.0..=self.run_len.1).min(d);
            if len >= d {
                continue; // never blank the whole spectrum
            }
            let start = rng.gen_range(0..d - len);
            for m in &mut mask[start..start + len] {
                *m = false;
            }
        }
        mask
    }

    /// Applies a snippet mask to a spectrum's existing mask (logical AND),
    /// so coverage gaps and snippets compose.
    pub fn apply<R: Rng + ?Sized>(&self, rng: &mut R, mask: &mut [bool]) {
        let extra = self.mask(rng, mask.len());
        for (m, e) in mask.iter_mut().zip(extra) {
            *m = *m && e;
        }
    }
}

/// Small-mean Poisson sampler (Knuth's product method) — adequate for gap
/// counts of a few per spectrum.
fn poisson_small<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let l = (-mean).exp();
    let mut k = 0;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // pathological mean guard
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zero_runs_leaves_complete_mask() {
        let g = SnippetGaps::new(0.0, 3, 10);
        let mut rng = StdRng::seed_from_u64(70);
        let m = g.mask(&mut rng, 100);
        assert!(m.iter().all(|&b| b));
    }

    #[test]
    fn masks_remove_expected_fraction() {
        let g = SnippetGaps::new(2.0, 5, 5); // ~10 pixels of 200 expected
        let mut rng = StdRng::seed_from_u64(71);
        let mut missing = 0usize;
        let trials = 2000;
        for _ in 0..trials {
            missing += g.mask(&mut rng, 200).iter().filter(|&&b| !b).count();
        }
        let frac = missing as f64 / (200.0 * trials as f64);
        // Expected ≈ 2 runs × 5 px / 200 px = 5% (overlaps reduce slightly).
        assert!(frac > 0.03 && frac < 0.06, "missing fraction {frac}");
    }

    #[test]
    fn gaps_are_contiguous_runs() {
        let g = SnippetGaps::new(1.0, 4, 4);
        let mut rng = StdRng::seed_from_u64(72);
        for _ in 0..100 {
            let m = g.mask(&mut rng, 50);
            // Every maximal false-run must have length exactly 4 (or be a
            // merge of overlapping runs — allow multiples ≥ 4).
            let mut run = 0;
            for &b in m.iter().chain([true].iter()) {
                if !b {
                    run += 1;
                } else {
                    if run > 0 {
                        assert!(run >= 4, "short run {run}");
                    }
                    run = 0;
                }
            }
        }
    }

    #[test]
    fn apply_composes_with_existing_mask() {
        let g = SnippetGaps::new(5.0, 3, 8);
        let mut rng = StdRng::seed_from_u64(73);
        let mut mask = vec![true; 100];
        for m in mask.iter_mut().take(20) {
            *m = false; // pre-existing coverage gap
        }
        g.apply(&mut rng, &mut mask);
        assert!(
            mask[..20].iter().all(|&b| !b),
            "pre-existing gap must survive"
        );
    }

    #[test]
    fn poisson_mean_roughly_right() {
        let mut rng = StdRng::seed_from_u64(74);
        let n = 20000;
        let total: usize = (0..n).map(|_| poisson_small(&mut rng, 3.0)).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
    }
}
