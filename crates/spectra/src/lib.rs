#![warn(missing_docs)]
//! Synthetic SDSS-like galaxy spectra and performance workloads.
//!
//! The paper evaluates on two kinds of data, neither of which we can ship:
//! real SDSS galaxy spectra (Fig. 4–5) and "gaussian random data
//! artificially enriched with additional signals" (Fig. 6–7, §III-D). This
//! crate builds controlled synthetic equivalents of both:
//!
//! * [`generator`] — galaxy spectra drawn from a deliberately **low-rank
//!   manifold** (continuum families + emission/absorption lines driven by a
//!   handful of latent parameters), on an SDSS-style log-wavelength grid,
//!   redshifted, noised, and flux-normalized. The low intrinsic rank is the
//!   property the paper credits for fast convergence ("the galaxies are
//!   redundant in good approximation").
//! * [`outliers`] — contamination processes: cosmic-ray spikes, sky
//!   subtraction residuals, and junk spectra (Fig. 1's workload).
//! * [`gaps`] — missing-data masks: random snippets and redshift-correlated
//!   wavelength-coverage gaps (§II-D's two gap classes).
//! * [`synthetic`] — planted-subspace Gaussian streams for the performance
//!   experiments, with ground truth available for accuracy checks.
//! * [`io`] — CSV tuple reading/writing matching the stream engine's file
//!   source/sink formats.

pub mod contaminants;
pub mod continuum;
pub mod gaps;
pub mod generator;
pub mod io;
pub mod lines;
pub mod normalize;
pub mod outliers;
pub mod synthetic;
pub mod wavelength;

pub use generator::{GalaxyGenerator, GalaxyParams, Spectrum};
pub use synthetic::PlantedSubspace;
pub use wavelength::WavelengthGrid;
