//! Contamination processes (the Fig. 1 workload).
//!
//! Real survey streams are littered with measurement failures; the paper's
//! robust estimator exists to survive them. Three physically-motivated
//! contamination models are provided, plus a mixing wrapper that
//! contaminates a clean stream at a configurable rate.

use rand::Rng;
use spca_linalg::rng::standard_normal;

/// Kinds of contamination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutlierKind {
    /// Cosmic-ray hit: a huge spike in a handful of adjacent pixels.
    CosmicRay,
    /// Sky-subtraction failure: strong residuals at fixed (sky-line)
    /// pixels across the whole spectrum.
    SkyResidual,
    /// Corrupted readout: the spectrum replaced by broadband junk.
    Junk,
}

/// Configurable outlier injector.
#[derive(Debug, Clone)]
pub struct OutlierInjector {
    /// Probability that a given observation is contaminated.
    pub rate: f64,
    /// Amplitude of the contamination relative to unit-scale data.
    pub amplitude: f64,
    /// Which kinds to draw from (uniformly).
    pub kinds: Vec<OutlierKind>,
}

impl OutlierInjector {
    /// An injector producing all three kinds at the given rate and a
    /// default amplitude of 50× the data scale.
    pub fn new(rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&rate), "rate must be a probability");
        OutlierInjector {
            rate,
            amplitude: 50.0,
            kinds: vec![
                OutlierKind::CosmicRay,
                OutlierKind::SkyResidual,
                OutlierKind::Junk,
            ],
        }
    }

    /// Restricts to a single kind.
    pub fn only(mut self, kind: OutlierKind) -> Self {
        self.kinds = vec![kind];
        self
    }

    /// Possibly contaminates `x` in place; returns the kind applied, if any.
    pub fn maybe_contaminate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        x: &mut [f64],
    ) -> Option<OutlierKind> {
        if rng.gen::<f64>() >= self.rate || self.kinds.is_empty() {
            return None;
        }
        let kind = self.kinds[rng.gen_range(0..self.kinds.len())];
        self.contaminate(rng, x, kind);
        Some(kind)
    }

    /// Applies a specific contamination to `x`.
    pub fn contaminate<R: Rng + ?Sized>(&self, rng: &mut R, x: &mut [f64], kind: OutlierKind) {
        let d = x.len();
        match kind {
            OutlierKind::CosmicRay => {
                let center = rng.gen_range(0..d);
                let width = rng.gen_range(1..=3.min(d));
                let lo = center.saturating_sub(width);
                let hi = (center + width).min(d);
                for xi in &mut x[lo..hi] {
                    *xi += self.amplitude * (1.0 + rng.gen::<f64>());
                }
            }
            OutlierKind::SkyResidual => {
                // Fixed "sky line" pixels at regular intervals.
                let stride = (d / 12).max(1);
                for i in (stride / 2..d).step_by(stride) {
                    x[i] += self.amplitude * 0.4 * standard_normal(rng);
                }
            }
            OutlierKind::Junk => {
                for v in x.iter_mut() {
                    *v = self.amplitude * 0.3 * standard_normal(rng);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rate_zero_never_contaminates() {
        let inj = OutlierInjector::new(0.0);
        let mut rng = StdRng::seed_from_u64(60);
        let mut x = vec![0.0; 50];
        for _ in 0..200 {
            assert_eq!(inj.maybe_contaminate(&mut rng, &mut x), None);
        }
        assert!(x.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn rate_one_always_contaminates() {
        let inj = OutlierInjector::new(1.0);
        let mut rng = StdRng::seed_from_u64(61);
        let mut hits = 0;
        for _ in 0..50 {
            let mut x = vec![0.0; 50];
            if inj.maybe_contaminate(&mut rng, &mut x).is_some() {
                hits += 1;
                assert!(x.iter().any(|&v| v != 0.0));
            }
        }
        assert_eq!(hits, 50);
    }

    #[test]
    fn cosmic_ray_is_localized() {
        let inj = OutlierInjector::new(1.0).only(OutlierKind::CosmicRay);
        let mut rng = StdRng::seed_from_u64(62);
        let mut x = vec![0.0; 100];
        inj.contaminate(&mut rng, &mut x, OutlierKind::CosmicRay);
        let touched = x.iter().filter(|&&v| v != 0.0).count();
        assert!((1..=6).contains(&touched), "{touched} pixels hit");
        assert!(x.iter().cloned().fold(0.0_f64, f64::max) > 40.0);
    }

    #[test]
    fn junk_replaces_everything() {
        let inj = OutlierInjector::new(1.0);
        let mut rng = StdRng::seed_from_u64(63);
        let mut x = vec![7.0; 100];
        inj.contaminate(&mut rng, &mut x, OutlierKind::Junk);
        // Original values gone.
        assert!(x.iter().filter(|&&v| (v - 7.0).abs() < 1e-9).count() < 5);
    }

    #[test]
    fn statistical_rate_matches() {
        let inj = OutlierInjector::new(0.1);
        let mut rng = StdRng::seed_from_u64(64);
        let mut hits = 0;
        let n = 5000;
        for _ in 0..n {
            let mut x = vec![0.0; 10];
            if inj.maybe_contaminate(&mut rng, &mut x).is_some() {
                hits += 1;
            }
        }
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.1).abs() < 0.02, "observed rate {rate}");
    }

    #[test]
    #[should_panic(expected = "probability")]
    fn bad_rate_rejected() {
        let _ = OutlierInjector::new(1.5);
    }
}
