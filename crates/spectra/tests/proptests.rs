//! Property tests for the synthetic-data substrate.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_spectra::gaps::SnippetGaps;
use spca_spectra::normalize::{median_norm, unit_norm_masked};
use spca_spectra::outliers::OutlierInjector;
use spca_spectra::{GalaxyGenerator, GalaxyParams, PlantedSubspace, WavelengthGrid};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Grids are monotone increasing and pixel lookup round-trips.
    #[test]
    fn grid_roundtrip(n in 10usize..2000) {
        let g = WavelengthGrid::sdss_like(n);
        let l = g.lambdas();
        prop_assert!(l.windows(2).all(|w| w[1] > w[0]));
        for i in [0, n / 3, n - 1] {
            prop_assert_eq!(g.pixel_of(g.lambda(i)), Some(i));
        }
    }

    /// Galaxy model spectra are finite, non-negative, and scale linearly
    /// with brightness.
    #[test]
    fn galaxy_model_properties(age in 0.0f64..1.0, emission in 0.0f64..1.0, bright in 0.1f64..3.0) {
        let gen = GalaxyGenerator::new(120, 0.2);
        let p = GalaxyParams { age, emission, agn: 0.0, brightness: bright, z: 0.0 };
        let f = gen.model(&p);
        prop_assert!(f.iter().all(|v| v.is_finite() && *v >= 0.0));
        let p2 = GalaxyParams { brightness: 2.0 * bright, ..p };
        let f2 = gen.model(&p2);
        for (a, b) in f.iter().zip(&f2) {
            prop_assert!((2.0 * a - b).abs() < 1e-9 * (1.0 + b.abs()));
        }
    }

    /// Masked normalization is brightness-invariant and idempotent-ish.
    #[test]
    fn masked_norm_brightness_invariant(
        base in proptest::collection::vec(0.01f64..10.0, 8..64),
        scale in 0.1f64..50.0,
        mask_seed in 0u64..1000,
    ) {
        let mut rng = StdRng::seed_from_u64(mask_seed);
        let mask: Vec<bool> = {
            use rand::Rng;
            let mut m: Vec<bool> = (0..base.len()).map(|_| rng.gen::<f64>() > 0.3).collect();
            if m.iter().all(|&b| !b) {
                m[0] = true;
            }
            m
        };
        let mut a = base.clone();
        let mut b: Vec<f64> = base.iter().map(|v| scale * v).collect();
        unit_norm_masked(&mut a, &mask);
        unit_norm_masked(&mut b, &mask);
        for (x, y) in a.iter().zip(&b) {
            prop_assert!((x - y).abs() < 1e-9, "{x} vs {y}");
        }
        // Re-normalizing is a no-op.
        let before = a.clone();
        unit_norm_masked(&mut a, &mask);
        for (x, y) in a.iter().zip(&before) {
            prop_assert!((x - y).abs() < 1e-12);
        }
    }

    /// Median normalization puts the observed median at exactly 1.
    #[test]
    fn median_norm_pins_median(vals in proptest::collection::vec(0.1f64..100.0, 5..40)) {
        let mut v = vals.clone();
        let mask = vec![true; v.len()];
        median_norm(&mut v, &mask);
        let mut sorted = v.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let med = if sorted.len() % 2 == 1 {
            sorted[sorted.len() / 2]
        } else {
            0.5 * (sorted[sorted.len() / 2 - 1] + sorted[sorted.len() / 2])
        };
        prop_assert!((med - 1.0).abs() < 1e-9, "median {med}");
    }

    /// Snippet masks never blank everything and only remove pixels.
    #[test]
    fn snippet_masks_bounded(runs in 0.0f64..5.0, lo in 1usize..5, extra in 0usize..10, d in 20usize..200, seed in 0u64..500) {
        let g = SnippetGaps::new(runs, lo, lo + extra);
        let mut rng = StdRng::seed_from_u64(seed);
        let m = g.mask(&mut rng, d);
        prop_assert_eq!(m.len(), d);
        prop_assert!(m.iter().any(|&b| b), "entire spectrum blanked");
    }

    /// The planted-subspace workload's samples decompose exactly into
    /// signal (in-basis) + noise with the configured magnitude statistics.
    #[test]
    fn planted_samples_have_bounded_off_subspace_energy(seed in 0u64..500) {
        let w = PlantedSubspace::new(24, 3, 0.01);
        let mut rng = StdRng::seed_from_u64(seed);
        let x = w.sample(&mut rng);
        let coeffs = w.basis().tr_matvec(&x).unwrap();
        let rec = w.basis().matvec(&coeffs).unwrap();
        let resid: f64 = x.iter().zip(&rec).map(|(a, b)| (a - b) * (a - b)).sum();
        // Off-subspace energy is pure noise: ~ σ²·(d−k) with heavy slack.
        prop_assert!(resid < 0.01 * 24.0, "residual energy {resid}");
    }

    /// Outlier injection at rate 0 and 1 behaves exactly.
    #[test]
    fn injector_rate_extremes(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let never = OutlierInjector::new(0.0);
        let always = OutlierInjector::new(1.0);
        let mut x = vec![1.0; 30];
        prop_assert!(never.maybe_contaminate(&mut rng, &mut x).is_none());
        prop_assert_eq!(&x, &vec![1.0; 30]);
        prop_assert!(always.maybe_contaminate(&mut rng, &mut x).is_some());
    }
}
