//! Multi-process distributed execution: the `spca coordinator` and
//! `spca worker` runners.
//!
//! The paper runs its analysis graph on an InfoSphere Streams cluster where
//! PEs live in separate processes connected by TCP. This module reproduces
//! that deployment shape on top of [`spca_streams::NetTransport`]:
//!
//! * Every process builds the **identical** application graph (same
//!   operator insertion order, same edges — [`DistSpec::build`]), then runs
//!   only its own slice of it via `Engine::start_in_partition`. Boundary
//!   edges become socket links carrying codec frames; edge ids are the
//!   builder's insertion indices, so both sides agree on link ids without
//!   negotiation.
//! * The **coordinator** owns the source, split, monitor, and
//!   snapshot-writer; **worker `w`** owns every `pca-i` with
//!   `i % n_workers == w`.
//! * A tiny line-oriented control protocol bootstraps the data plane:
//!   workers dial the coordinator and send `REGISTER <index> <data_addr>`;
//!   the coordinator answers `ASSIGN <spec>` once all workers are present;
//!   workers heartbeat `HB <index>` while running, send `DONE <index>`
//!   when their partition drains, and receive `BYE`.
//! * A worker that dies mid-run is **respawned** by the coordinator
//!   (`current_exe() worker …` with the same data address, so the peer map
//!   of already-running senders stays valid). The respawned process
//!   rehydrates its operators and link watermarks from its PE checkpoint
//!   manifest and resumes; the sender-side replay queues plus the
//!   receiver-side duplicate trim give exactly-once redelivery, so the
//!   final eigensystems stay bit-identical to an undisturbed run.
//!
//! Determinism note: runs meant to be compared bit-for-bit use a
//! round-robin split and a channel capacity at least the corpus size, so
//! the split's non-blocking fallback never re-routes a tuple (the
//! engine-to-observation assignment is then a pure function of arrival
//! order).

use std::collections::{HashMap, HashSet};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use spca_core::PcaConfig;
use spca_streams::engine::RunningEngine;
use spca_streams::ops::{CsvFileSource, GeneratorSource, SplitStrategy};
use spca_streams::{Engine, GraphBuilder, NetPartition, NetTransport, Operator, RunReport};

use crate::app::{AppConfig, AppHandles, ParallelPcaApp};
use crate::messages::register_wire_codecs;
use crate::sync::SyncStrategy;

/// How often workers send `HB` lines on the control socket.
const HEARTBEAT_PERIOD: Duration = Duration::from_millis(50);
/// A worker whose control socket is silent this long is declared dead.
const LIVENESS_WINDOW: Duration = Duration::from_secs(5);
/// Most *consecutive* respawns any single worker slot gets before the
/// coordinator gives up on it (a crash-loop backstop). The budget is
/// windowed, not lifetime: a respawned worker that re-registers and stays
/// healthy past [`LIVENESS_WINDOW`] earns its slot a fresh budget — only
/// an actual crash *loop* (deaths with no healthy run in between) burns
/// through it.
const MAX_RESPAWNS: usize = 5;

/// One worker slot's respawn bookkeeping: the consecutive-death burst
/// (gating the crash-loop backstop) and the lifetime total (reporting).
///
/// Previously the backstop counted lifetime deaths, so a long-lived fleet
/// whose worker was killed sporadically — healthy for hours in between —
/// was permanently abandoned on the sixth death. The burst counter resets
/// via [`RespawnBudget::mark_healthy`] once the respawned worker has
/// stayed up past the liveness window, restoring the intended semantics:
/// the cap stops *loops*, not sporadic faults.
#[derive(Debug, Clone)]
struct RespawnBudget {
    /// Deaths since the last healthy run.
    burst: usize,
    /// Lifetime deaths (monotonic; feeds `CoordinatorReport::respawns`).
    total: usize,
    /// Burst ceiling.
    max_burst: usize,
}

impl RespawnBudget {
    fn new(max_burst: usize) -> Self {
        RespawnBudget {
            burst: 0,
            total: 0,
            max_burst,
        }
    }

    /// Records a death. Returns `(attempt, within_budget)`: the attempt
    /// number within the current burst, and whether the slot still gets a
    /// respawn.
    fn record_death(&mut self) -> (usize, bool) {
        self.burst += 1;
        self.total += 1;
        (self.burst, self.burst <= self.max_burst)
    }

    /// The respawned worker re-registered and stayed healthy past the
    /// liveness window: forgive the burst.
    fn mark_healthy(&mut self) {
        self.burst = 0;
    }
}
/// How long the coordinator waits for the initial `REGISTER` round and
/// for the final `DONE` round.
const RENDEZVOUS_DEADLINE: Duration = Duration::from_secs(60);

/// Everything a process needs to build the shared graph and find its
/// peers. The coordinator serializes this into the `ASSIGN` line, so every
/// field round-trips through [`DistSpec::encode`] / [`DistSpec::decode`].
#[derive(Debug, Clone)]
pub struct DistSpec {
    /// Number of parallel PCA engines in the graph.
    pub n_engines: usize,
    /// Number of worker processes the engines are spread over.
    pub n_workers: usize,
    /// Observation dimensionality.
    pub dim: usize,
    /// Principal components tracked per engine.
    pub components: usize,
    /// Effective memory (observations) of the exponential forgetting.
    pub memory: usize,
    /// Tuples per cross-PE frame.
    pub batch: usize,
    /// Cross-PE channel capacity in tuples. For bit-identical comparisons
    /// this must be at least the corpus size (see the module docs).
    pub capacity: usize,
    /// Emit a monitoring snapshot every `n` observations (0 = final only).
    pub snapshot_every: u64,
    /// Directory the snapshot-writer persists `engine{k}_latest.snapshot`
    /// files into — the bit-identity artifact of a run.
    pub snapshots: PathBuf,
    /// Checkpoint/recovery directory. When set, workers always start in
    /// rehydrate mode (a fresh start simply finds no manifest) and link
    /// acks are gated on durability.
    pub recovery: Option<PathBuf>,
    /// Data-plane address of the coordinator's transport.
    pub coord_data: SocketAddr,
    /// Data-plane address of each worker's transport, indexed by worker.
    pub worker_data: Vec<SocketAddr>,
}

impl DistSpec {
    /// Which worker owns engine `i` (round-robin over workers).
    pub fn owner_of(&self, engine: usize) -> usize {
        engine % self.n_workers.max(1)
    }

    /// Serializes the spec as one whitespace-separated `k=v` line (no
    /// newline). Paths containing whitespace are not representable.
    pub fn encode(&self) -> String {
        let mut s = format!(
            "v1 engines={} workers={} dim={} components={} memory={} batch={} capacity={} \
             snap_every={} snapshots={} coord={}",
            self.n_engines,
            self.n_workers,
            self.dim,
            self.components,
            self.memory,
            self.batch,
            self.capacity,
            self.snapshot_every,
            self.snapshots.display(),
            self.coord_data,
        );
        if let Some(ref r) = self.recovery {
            s.push_str(&format!(" recovery={}", r.display()));
        }
        for (i, a) in self.worker_data.iter().enumerate() {
            s.push_str(&format!(" w{i}={a}"));
        }
        s
    }

    /// Parses a line produced by [`DistSpec::encode`].
    pub fn decode(line: &str) -> io::Result<DistSpec> {
        fn bad(msg: String) -> io::Error {
            io::Error::new(io::ErrorKind::InvalidData, msg)
        }
        let mut it = line.split_whitespace();
        let ver = it.next().unwrap_or("");
        if ver != "v1" {
            return Err(bad(format!("unsupported spec version '{ver}'")));
        }
        let mut kv: HashMap<&str, &str> = HashMap::new();
        for tok in it {
            let (k, v) = tok
                .split_once('=')
                .ok_or_else(|| bad(format!("malformed spec token '{tok}'")))?;
            kv.insert(k, v);
        }
        fn num<T: std::str::FromStr>(kv: &HashMap<&str, &str>, k: &str) -> io::Result<T> {
            kv.get(k)
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| bad(format!("spec is missing or cannot parse '{k}'")))
        }
        let n_workers: usize = num(&kv, "workers")?;
        let mut worker_data = Vec::with_capacity(n_workers);
        for i in 0..n_workers {
            worker_data.push(num(&kv, &format!("w{i}"))?);
        }
        Ok(DistSpec {
            n_engines: num(&kv, "engines")?,
            n_workers,
            dim: num(&kv, "dim")?,
            components: num(&kv, "components")?,
            memory: num(&kv, "memory")?,
            batch: num(&kv, "batch")?,
            capacity: num(&kv, "capacity")?,
            snapshot_every: num(&kv, "snap_every")?,
            snapshots: PathBuf::from(
                *kv.get("snapshots")
                    .ok_or_else(|| bad("spec is missing 'snapshots'".into()))?,
            ),
            recovery: kv.get("recovery").map(PathBuf::from),
            coord_data: num(&kv, "coord")?,
            worker_data,
        })
    }

    /// The application config every process derives the graph from.
    fn app_config(&self) -> AppConfig {
        let pca = PcaConfig::new(self.dim, self.components)
            .with_memory(self.memory)
            .with_extra(2);
        let mut cfg = AppConfig::new(self.n_engines, pca);
        cfg.split = SplitStrategy::RoundRobin;
        cfg.sync = SyncStrategy::None;
        cfg.snapshot_every = self.snapshot_every;
        cfg.batch_size = self.batch;
        cfg.channel_capacity = self.capacity;
        cfg.snapshot_dir = Some(self.snapshots.clone());
        cfg.recovery_dir = self.recovery.clone();
        cfg
    }

    /// Builds the shared application graph. Every participant calls this
    /// with its own source operator (workers pass a stub — the source runs
    /// on the coordinator; only the graph *shape* must agree).
    pub fn build(&self, source: Box<dyn Operator>) -> (GraphBuilder, AppHandles) {
        ParallelPcaApp::build(&self.app_config(), source)
    }
}

/// A stub source for processes that do not own the real one. Emits
/// nothing; it only has to occupy the same slot in the graph.
pub fn stub_source() -> Box<dyn Operator> {
    Box::new(GeneratorSource::new(
        |_: u64| -> Option<(Vec<f64>, Option<Vec<bool>>)> { None },
    ))
}

fn engine_index(name: &str) -> Option<usize> {
    name.strip_prefix("pca-").and_then(|s| s.parse().ok())
}

/// The coordinator's partition: everything except the `pca-*` operators,
/// with outgoing `split → pca-i` boundary edges mapped to the owning
/// worker's data address.
pub fn coordinator_partition(
    spec: &DistSpec,
    g: &GraphBuilder,
    net: Arc<NetTransport>,
) -> NetPartition {
    let local_ops: HashSet<String> = g
        .op_names()
        .iter()
        .filter(|n| engine_index(n).is_none())
        .map(|n| n.to_string())
        .collect();
    let mut peers = HashMap::new();
    for (eid, (from, _port, to, _kind)) in g.edge_list().iter().enumerate() {
        let (f, t) = (g.op_name(*from), g.op_name(*to));
        if local_ops.contains(f) && !local_ops.contains(t) {
            let i = engine_index(t).expect("non-local op must be an engine");
            peers.insert(eid as u64, spec.worker_data[spec.owner_of(i)]);
        }
    }
    NetPartition {
        local_ops,
        net,
        peers,
        rehydrate: false,
    }
}

/// Worker `w`'s partition: its engines, with outgoing boundary edges
/// (`pca-i → monitor` / `pca-i → snapshot-writer`) pointed at the
/// coordinator. Rehydration is always on when a recovery directory is
/// configured — a fresh start simply finds no manifest.
pub fn worker_partition(
    spec: &DistSpec,
    g: &GraphBuilder,
    net: Arc<NetTransport>,
    worker: usize,
) -> NetPartition {
    let local_ops: HashSet<String> = (0..spec.n_engines)
        .filter(|&i| spec.owner_of(i) == worker)
        .map(|i| format!("pca-{i}"))
        .collect();
    let mut peers = HashMap::new();
    for (eid, (from, _port, to, _kind)) in g.edge_list().iter().enumerate() {
        if local_ops.contains(g.op_name(*from)) && !local_ops.contains(g.op_name(*to)) {
            peers.insert(eid as u64, spec.coord_data);
        }
    }
    NetPartition {
        local_ops,
        net,
        peers,
        rehydrate: spec.recovery.is_some(),
    }
}

/// Runs the whole graph in this process (no sockets) with the exact spec a
/// distributed run would use — the baseline for bit-identity comparisons.
pub fn run_local(spec: &DistSpec, source: Box<dyn Operator>) -> RunReport {
    register_wire_codecs();
    let (g, _handles) = spec.build(source);
    Engine::run(g)
}

fn timeout_err(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::TimedOut, msg.to_string())
}

/// Dials `addr` until it answers or `deadline` elapses.
fn connect_retry(addr: SocketAddr, deadline: Duration) -> io::Result<TcpStream> {
    let start = Instant::now();
    loop {
        match TcpStream::connect_timeout(&addr, Duration::from_secs(1)) {
            Ok(s) => return Ok(s),
            Err(e) => {
                if start.elapsed() >= deadline {
                    return Err(e);
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

fn write_line(stream: &Mutex<TcpStream>, line: &str) -> io::Result<()> {
    let mut s = stream.lock();
    s.write_all(line.as_bytes())?;
    s.write_all(b"\n")
}

/// Runs a worker process end to end: register with the coordinator,
/// receive the spec, run this worker's partition, report `DONE`.
///
/// `data` is the data-plane bind address. Pass a concrete port when the
/// worker may be respawned — the coordinator re-launches it with the
/// *resolved* address so already-running senders reconnect to it.
pub fn run_worker(
    coordinator: SocketAddr,
    index: usize,
    data: SocketAddr,
) -> io::Result<RunReport> {
    register_wire_codecs();
    let net = NetTransport::bind(&data.to_string())?;

    let ctl = connect_retry(coordinator, Duration::from_secs(30))?;
    ctl.set_nodelay(true).ok();
    let mut reader = BufReader::new(ctl.try_clone()?);
    let writer = Arc::new(Mutex::new(ctl));

    write_line(&writer, &format!("REGISTER {index} {}", net.local_addr()))?;

    // The coordinator answers once every worker has registered.
    let mut line = String::new();
    reader
        .get_ref()
        .set_read_timeout(Some(RENDEZVOUS_DEADLINE * 2))?;
    reader.read_line(&mut line)?;
    let spec = DistSpec::decode(
        line.strip_prefix("ASSIGN ")
            .ok_or_else(|| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("expected ASSIGN, got '{}'", line.trim()),
                )
            })?
            .trim(),
    )?;
    if index >= spec.n_workers {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "worker index {index} out of range (workers={})",
                spec.n_workers
            ),
        ));
    }

    let (g, _handles) = spec.build(stub_source());
    let part = worker_partition(&spec, &g, Arc::clone(&net), index);
    let running: RunningEngine = Engine::start_in_partition(g, part);

    // Heartbeat until the partition drains; write failures are harmless
    // (the coordinator treats silence as death and the run as a whole
    // still converges through the data plane).
    let hb_stop = Arc::new(AtomicBool::new(false));
    let hb = {
        let stop = Arc::clone(&hb_stop);
        let w = Arc::clone(&writer);
        let msg = format!("HB {index}");
        std::thread::Builder::new()
            .name("spca-hb".into())
            .spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    let _ = write_line(&w, &msg);
                    std::thread::sleep(HEARTBEAT_PERIOD);
                }
            })
            .expect("spawn heartbeat thread")
    };

    let report = running.join();
    hb_stop.store(true, Ordering::Relaxed);
    let _ = hb.join();

    write_line(&writer, &format!("DONE {index}"))?;
    // Wait for BYE so the coordinator has seen our DONE before we vanish.
    reader
        .get_ref()
        .set_read_timeout(Some(Duration::from_secs(10)))?;
    line.clear();
    let _ = reader.read_line(&mut line);
    Ok(report)
}

/// Outcome of a coordinator run.
pub struct CoordinatorReport {
    /// The engine report of the coordinator's own partition.
    pub report: RunReport,
    /// Worker processes respawned after mid-run death.
    pub respawns: usize,
}

struct CoordShared {
    stop: AtomicBool,
    done: Mutex<Vec<bool>>,
    respawns: Mutex<Vec<RespawnBudget>>,
    children: Mutex<Vec<Child>>,
}

/// Runs the coordinator: rendezvous with `spec.n_workers` workers on
/// `listen`, serve the spec, run the coordinator partition (source, split,
/// monitor, snapshot-writer), supervise workers (respawning dead ones),
/// and wait for every worker's `DONE`.
///
/// `spec.worker_data` may be left empty — it is filled from the workers'
/// `REGISTER` lines. `spec.coord_data` is overwritten with the transport's
/// resolved address.
pub fn run_coordinator(
    listen: SocketAddr,
    data: SocketAddr,
    input: PathBuf,
    mut spec: DistSpec,
) -> io::Result<CoordinatorReport> {
    assert!(spec.n_workers >= 1, "need at least one worker");
    register_wire_codecs();
    let net = NetTransport::bind(&data.to_string())?;
    spec.coord_data = net.local_addr();

    let listener = TcpListener::bind(listen)?;
    listener.set_nonblocking(true)?;
    // Respawned workers run on this host; rewrite a wildcard listen
    // address to the matching loopback for the dial-back flag.
    let mut ctl_addr = listener.local_addr()?;
    if ctl_addr.ip().is_unspecified() {
        ctl_addr.set_ip(match ctl_addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }

    // Phase 1: collect the initial REGISTER round.
    let mut pending: Vec<Option<TcpStream>> = (0..spec.n_workers).map(|_| None).collect();
    spec.worker_data = vec![SocketAddr::from(([0, 0, 0, 0], 0)); spec.n_workers];
    let start = Instant::now();
    while pending.iter().any(|p| p.is_none()) {
        if start.elapsed() > RENDEZVOUS_DEADLINE {
            return Err(timeout_err("timed out waiting for workers to register"));
        }
        match listener.accept() {
            Ok((s, _)) => {
                let (idx, addr) = read_register(&s)?;
                if idx >= spec.n_workers {
                    eprintln!("[coordinator] ignoring REGISTER from out-of-range worker {idx}");
                    continue;
                }
                spec.worker_data[idx] = addr;
                pending[idx] = Some(s);
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => return Err(e),
        }
    }

    // Phase 2: everyone is here — serve the spec and start supervising.
    let assign = format!("ASSIGN {}", spec.encode());
    let shared = Arc::new(CoordShared {
        stop: AtomicBool::new(false),
        done: Mutex::new(vec![false; spec.n_workers]),
        respawns: Mutex::new(vec![RespawnBudget::new(MAX_RESPAWNS); spec.n_workers]),
        children: Mutex::new(Vec::new()),
    });
    let mut monitors = Vec::new();
    for (idx, slot) in pending.iter_mut().enumerate() {
        let s = slot.take().expect("registered worker stream");
        monitors.push(spawn_monitor(
            Arc::clone(&shared),
            s,
            idx,
            spec.worker_data[idx],
            ctl_addr,
            assign.clone(),
        )?);
    }

    // Phase 3: keep accepting — respawned workers re-register here.
    let acceptor = {
        let shared = Arc::clone(&shared);
        let spec_addrs = spec.worker_data.clone();
        let assign = assign.clone();
        std::thread::Builder::new()
            .name("spca-accept".into())
            .spawn(move || {
                let mut late = Vec::new();
                while !shared.stop.load(Ordering::Relaxed) {
                    match listener.accept() {
                        Ok((s, _)) => {
                            let Ok((idx, addr)) = read_register(&s) else {
                                continue;
                            };
                            if idx >= spec_addrs.len() {
                                continue;
                            }
                            if addr != spec_addrs[idx] {
                                eprintln!(
                                    "[coordinator] worker {idx} re-registered at {addr} but its \
                                     links expect {}; data traffic will not resume",
                                    spec_addrs[idx]
                                );
                            }
                            if let Ok(h) = spawn_monitor(
                                Arc::clone(&shared),
                                s,
                                idx,
                                spec_addrs[idx],
                                ctl_addr,
                                assign.clone(),
                            ) {
                                late.push(h);
                            }
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(20));
                        }
                        Err(_) => break,
                    }
                }
                for h in late {
                    let _ = h.join();
                }
            })
            .expect("spawn acceptor thread")
    };

    // Run the coordinator's own partition. join() blocks until the monitor
    // and snapshot-writer have drained (EOS from every engine over the
    // wire) and then flushes final acks while shutting the transport down.
    let source = Box::new(CsvFileSource::new(input));
    let (g, _handles) = spec.build(source);
    let part = coordinator_partition(&spec, &g, Arc::clone(&net));
    let running = Engine::start_in_partition(g, part);
    let report = running.join();

    // Wait for every worker's DONE so nobody is killed mid-teardown.
    let start = Instant::now();
    while !shared.done.lock().iter().all(|&d| d) {
        if start.elapsed() > RENDEZVOUS_DEADLINE {
            eprintln!("[coordinator] timed out waiting for worker DONEs; proceeding");
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    shared.stop.store(true, Ordering::Relaxed);
    let _ = acceptor.join();
    for h in monitors {
        let _ = h.join();
    }
    // Reap respawned children (kill any still running).
    for child in shared.children.lock().iter_mut() {
        match child.try_wait() {
            Ok(Some(_)) => {}
            _ => {
                let _ = child.kill();
                let _ = child.wait();
            }
        }
    }
    let respawns = shared.respawns.lock().iter().map(|b| b.total).sum();
    Ok(CoordinatorReport { report, respawns })
}

/// Reads one `REGISTER <index> <data_addr>` line off a fresh control
/// connection.
fn read_register(s: &TcpStream) -> io::Result<(usize, SocketAddr)> {
    s.set_nodelay(true).ok();
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    let mut line = String::new();
    BufReader::new(s.try_clone()?).read_line(&mut line)?;
    let mut it = line.split_whitespace();
    let parse = || {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad REGISTER '{}'", line.trim()),
        )
    };
    if it.next() != Some("REGISTER") {
        return Err(parse());
    }
    let idx = it.next().and_then(|t| t.parse().ok()).ok_or_else(parse)?;
    let addr = it.next().and_then(|t| t.parse().ok()).ok_or_else(parse)?;
    Ok((idx, addr))
}

/// Supervises one worker's control connection: answers its registration
/// with the spec, tracks heartbeats, marks `DONE`, and respawns the worker
/// if the connection dies (or goes silent) before then.
fn spawn_monitor(
    shared: Arc<CoordShared>,
    stream: TcpStream,
    idx: usize,
    data_addr: SocketAddr,
    ctl_addr: SocketAddr,
    assign: String,
) -> io::Result<std::thread::JoinHandle<()>> {
    std::thread::Builder::new()
        .name(format!("spca-mon-{idx}"))
        .spawn(move || {
            let run = || -> io::Result<bool> {
                let mut s = stream.try_clone()?;
                s.write_all(assign.as_bytes())?;
                s.write_all(b"\n")?;
                stream.set_read_timeout(Some(Duration::from_millis(200)))?;
                let mut reader = BufReader::new(stream.try_clone()?);
                let mut acc = String::new();
                let connected = Instant::now();
                let mut last_seen = Instant::now();
                let mut forgiven = false;
                loop {
                    if shared.stop.load(Ordering::Relaxed) {
                        return Ok(true);
                    }
                    match reader.read_line(&mut acc) {
                        Ok(0) => return Ok(false), // EOF: worker gone.
                        Ok(_) => {
                            if !acc.ends_with('\n') {
                                continue; // Partial line; keep accumulating.
                            }
                            last_seen = Instant::now();
                            // Healthy past the liveness window: this run is
                            // no longer part of a crash loop, so the slot's
                            // respawn budget resets.
                            if !forgiven && connected.elapsed() > LIVENESS_WINDOW {
                                shared.respawns.lock()[idx].mark_healthy();
                                forgiven = true;
                            }
                            let done = acc.trim().starts_with("DONE");
                            acc.clear();
                            if done {
                                shared.done.lock()[idx] = true;
                                let _ = s.write_all(b"BYE\n");
                                return Ok(true);
                            }
                        }
                        Err(e)
                            if e.kind() == io::ErrorKind::WouldBlock
                                || e.kind() == io::ErrorKind::TimedOut =>
                        {
                            if last_seen.elapsed() > LIVENESS_WINDOW {
                                eprintln!("[coordinator] worker {idx} went silent");
                                return Ok(false);
                            }
                        }
                        Err(_) => return Ok(false),
                    }
                }
            };
            let clean = run().unwrap_or(false);
            if clean || shared.stop.load(Ordering::Relaxed) {
                return;
            }
            // The worker died mid-run: respawn it against the same data
            // address so in-flight senders reconnect, with rehydration
            // picking up from its checkpoint manifest.
            let (attempt, within_budget) = shared.respawns.lock()[idx].record_death();
            if !within_budget {
                eprintln!(
                    "[coordinator] worker {idx} died {attempt} times without a healthy run; \
                     giving up"
                );
                return;
            }
            let exe = match std::env::current_exe() {
                Ok(p) => p,
                Err(e) => {
                    eprintln!(
                        "[coordinator] cannot locate own binary to respawn worker {idx}: {e}"
                    );
                    return;
                }
            };
            eprintln!("[coordinator] respawning worker {idx} (attempt {attempt})");
            match Command::new(exe)
                .args([
                    "worker",
                    "--coordinator",
                    &ctl_addr.to_string(),
                    "--index",
                    &idx.to_string(),
                    "--data",
                    &data_addr.to_string(),
                ])
                .spawn()
            {
                Ok(child) => shared.children.lock().push(child),
                Err(e) => eprintln!("[coordinator] failed to respawn worker {idx}: {e}"),
            }
        })
        .map_err(io::Error::other)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> DistSpec {
        DistSpec {
            n_engines: 3,
            n_workers: 2,
            dim: 8,
            components: 2,
            memory: 400,
            batch: 16,
            capacity: 1 << 16,
            snapshot_every: 128,
            snapshots: PathBuf::from("/tmp/snaps"),
            recovery: Some(PathBuf::from("/tmp/rec")),
            coord_data: "127.0.0.1:4500".parse().unwrap(),
            worker_data: vec![
                "127.0.0.1:4501".parse().unwrap(),
                "[::1]:4502".parse().unwrap(),
            ],
        }
    }

    #[test]
    fn respawn_budget_resets_after_a_healthy_run() {
        // Regression: the cap used to count lifetime deaths, so a worker
        // killed sporadically over a long run was permanently abandoned on
        // death MAX+1 even though every respawn came back healthy.
        let mut b = RespawnBudget::new(2);
        // Killed twice, with a healthy run re-registering in between each.
        for round in 0..2 {
            let (attempt, ok) = b.record_death();
            assert_eq!(attempt, 1, "round {round}: burst restarts at 1");
            assert!(ok, "round {round}: sporadic death stays within budget");
            b.mark_healthy(); // respawn re-registered, survived the window
        }
        // A third sporadic death is still fine — and so is a tenth.
        for _ in 0..8 {
            let (_, ok) = b.record_death();
            assert!(ok);
            b.mark_healthy();
        }
        assert_eq!(b.total, 10, "lifetime total keeps counting for the report");
    }

    #[test]
    fn respawn_budget_still_stops_a_crash_loop() {
        let mut b = RespawnBudget::new(2);
        b.record_death();
        b.mark_healthy();
        // Now a genuine loop: deaths with no healthy run in between.
        assert!(b.record_death().1);
        assert!(b.record_death().1);
        let (attempt, ok) = b.record_death();
        assert!(!ok, "third consecutive death exceeds a budget of 2");
        assert_eq!(attempt, 3);
        assert_eq!(b.total, 4);
    }

    #[test]
    fn spec_round_trips_through_the_assign_line() {
        let s = spec();
        let back = DistSpec::decode(&s.encode()).unwrap();
        assert_eq!(back.n_engines, s.n_engines);
        assert_eq!(back.n_workers, s.n_workers);
        assert_eq!(back.dim, s.dim);
        assert_eq!(back.components, s.components);
        assert_eq!(back.memory, s.memory);
        assert_eq!(back.batch, s.batch);
        assert_eq!(back.capacity, s.capacity);
        assert_eq!(back.snapshot_every, s.snapshot_every);
        assert_eq!(back.snapshots, s.snapshots);
        assert_eq!(back.recovery, s.recovery);
        assert_eq!(back.coord_data, s.coord_data);
        assert_eq!(back.worker_data, s.worker_data);

        let mut no_rec = s.clone();
        no_rec.recovery = None;
        assert_eq!(DistSpec::decode(&no_rec.encode()).unwrap().recovery, None);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(DistSpec::decode("v2 engines=1").is_err());
        assert!(DistSpec::decode("v1 engines=x workers=1").is_err());
        assert!(DistSpec::decode("v1 engines=1").is_err()); // missing keys
    }

    #[test]
    fn partitions_cover_the_graph_and_agree_on_boundary_edges() {
        let s = spec();
        let (g, _h) = s.build(stub_source());
        let net = NetTransport::bind("127.0.0.1:0").unwrap();

        let coord = coordinator_partition(&s, &g, Arc::clone(&net));
        let w0 = worker_partition(&s, &g, Arc::clone(&net), 0);
        let w1 = worker_partition(&s, &g, Arc::clone(&net), 1);

        // Ownership is a partition of the op set.
        let mut all: Vec<&String> = coord
            .local_ops
            .iter()
            .chain(w0.local_ops.iter())
            .chain(w1.local_ops.iter())
            .collect();
        all.sort();
        all.dedup();
        assert_eq!(all.len(), g.op_names().len());
        assert!(w0.local_ops.contains("pca-0") && w0.local_ops.contains("pca-2"));
        assert!(w1.local_ops.contains("pca-1"));
        assert!(coord.local_ops.contains("source") && coord.local_ops.contains("monitor"));

        // Every boundary edge has exactly one sender with a peer address,
        // and the coordinator routes split edges to the engine's owner.
        let edges = g.edge_list();
        for (eid, (from, _p, to, _k)) in edges.iter().enumerate() {
            let f = g.op_name(*from);
            let t = g.op_name(*to);
            let owners = [&coord, &w0, &w1];
            let senders: Vec<_> = owners
                .iter()
                .filter(|p| p.peers.contains_key(&(eid as u64)))
                .collect();
            let crosses = owners
                .iter()
                .any(|p| p.local_ops.contains(f) != p.local_ops.contains(t))
                || !owners
                    .iter()
                    .any(|p| p.local_ops.contains(f) && p.local_ops.contains(t));
            assert_eq!(senders.len(), usize::from(crosses), "edge {eid} {f}->{t}");
        }
        // split → pca-1 goes to worker 1's address.
        let e_split_1 = edges
            .iter()
            .position(|(f, _p, t, _k)| g.op_name(*f) == "split" && g.op_name(*t) == "pca-1")
            .unwrap();
        assert_eq!(coord.peers[&(e_split_1 as u64)], s.worker_data[1]);
        net.shutdown();
    }
}
