//! Eigensystem snapshots on disk.
//!
//! §III-C: "The intermediate calculation results are periodically saved to
//! the disk for future reference." The format is a self-describing text
//! file (header line, running sums, eigenvalues, eigenvectors, mean) that
//! round-trips exactly through [`write_snapshot`] / [`read_snapshot`], so
//! an application can be stopped and warm-started from its last state —
//! and scientists can inspect the file with nothing but a text editor.

use crate::messages::{PeerState, KIND_SNAPSHOT};
use spca_core::EigenSystem;
use spca_linalg::Mat;
use spca_streams::checkpoint::write_atomic_vfs;
use spca_streams::vfs::{RealVfs, Vfs};
use spca_streams::{ControlTuple, DataTuple, OpContext, Operator};
use std::io::Write;
use std::path::{Path, PathBuf};

const MAGIC: &str = "spca-eigensystem-v1";

/// Writes an eigensystem to `path`, crash-safely: the bytes go to a temp
/// file in the same directory, the temp file is fsynced, and only then is
/// it atomically renamed over `path` — so a crash mid-write can never
/// leave a truncated file where the last good snapshot was, and a crash
/// *after* the rename can never expose an empty or stale file the rename
/// outran in the page cache. The failure model covers both a crashing
/// process (the paper's operator restart story) and a crashing kernel:
/// without the fsync-before-rename, journaled filesystems may commit the
/// rename before the data blocks, which is exactly the window PE-level
/// recovery trusts. The containing directory is fsynced best-effort so the
/// rename itself is durable; directory fsync is not supported everywhere,
/// so its failure is ignored.
pub fn write_snapshot(path: &Path, eig: &EigenSystem) -> std::io::Result<()> {
    write_snapshot_vfs(&RealVfs, path, eig)
}

/// [`write_snapshot`] against an explicit [`Vfs`] backend — the same
/// create/write/fsync/rename/fsync-dir sequence as PE checkpoints, so the
/// storage-fault layer can exercise eigensystem snapshots too.
pub fn write_snapshot_vfs(vfs: &dyn Vfs, path: &Path, eig: &EigenSystem) -> std::io::Result<()> {
    write_atomic_vfs(vfs, path, &encode_snapshot(eig))
}

/// Serializes an eigensystem in the snapshot text format, in memory. This
/// is the byte layer under [`write_snapshot`]; the PE-level `Checkpoint`
/// machinery stores the same bytes inside per-PE manifests, so an engine
/// state is readable with a text editor wherever it ends up.
pub fn encode_snapshot(eig: &EigenSystem) -> Vec<u8> {
    let mut w = Vec::new();
    // Writes to a Vec cannot fail.
    let _ = writeln!(w, "{MAGIC}");
    let _ = writeln!(w, "dim {} components {}", eig.dim(), eig.n_components());
    let _ = writeln!(
        w,
        "sums sigma2 {:e} u {:e} v {:e} q {:e} n_obs {}",
        eig.sigma2, eig.sum_u, eig.sum_v, eig.sum_q, eig.n_obs
    );
    let _ = write_row(&mut w, "values", &eig.values);
    for k in 0..eig.n_components() {
        let _ = write_row(&mut w, "vector", eig.basis.col(k));
    }
    let _ = write_row(&mut w, "mean", &eig.mean);
    w
}

/// The recovery-snapshot path for an engine: written *synchronously* by the
/// PCA operator itself (see `StreamingPcaOp::with_recovery`), distinct from
/// [`SnapshotWriter::latest_path`] whose writer runs asynchronously on the
/// monitor stream and may lag the operator at the moment of a crash.
pub fn recovery_path(dir: &Path, engine: u32) -> PathBuf {
    dir.join(format!("engine{engine}_recovery.snapshot"))
}

fn write_row<W: Write>(w: &mut W, tag: &str, row: &[f64]) -> std::io::Result<()> {
    write!(w, "{tag}")?;
    for v in row {
        // `{:e}` round-trips f64 exactly through parse.
        write!(w, " {v:e}")?;
    }
    writeln!(w)
}

fn bad(msg: impl Into<String>) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg.into())
}

/// Reads an eigensystem previously written by [`write_snapshot`].
///
/// Every failure mode — wrong magic, malformed header, short file, a file
/// torn at an arbitrary *byte* offset — yields a clean
/// [`std::io::ErrorKind::InvalidData`] error; a torn snapshot can never
/// parse into a plausible-but-wrong eigensystem. The writer terminates
/// every line (including the last), so a file that does not end in `\n`
/// was cut off mid-write even when every token it kept still parses.
pub fn read_snapshot(path: &Path) -> std::io::Result<EigenSystem> {
    read_snapshot_vfs(&RealVfs, path)
}

/// [`read_snapshot`] against an explicit [`Vfs`] backend, for fault drills
/// that corrupt the bytes between write and read.
pub fn read_snapshot_vfs(vfs: &dyn Vfs, path: &Path) -> std::io::Result<EigenSystem> {
    decode_snapshot(&vfs.read(path)?)
}

/// Parses the snapshot text format from memory — the read-side counterpart
/// of [`encode_snapshot`], with the same torn-input guarantees as
/// [`read_snapshot`].
pub fn decode_snapshot(bytes: &[u8]) -> std::io::Result<EigenSystem> {
    let text = std::str::from_utf8(bytes).map_err(|_| bad("snapshot is not UTF-8"))?;
    if !text.ends_with('\n') {
        return Err(bad("truncated snapshot"));
    }
    let mut lines = text.lines();
    let mut next = || {
        lines
            .next()
            .map(|l| l.to_string())
            .ok_or_else(|| bad("truncated snapshot"))
    };

    if next()? != MAGIC {
        return Err(bad("not an spca eigensystem snapshot"));
    }
    let shape_line = next()?;
    let parts: Vec<&str> = shape_line.split_whitespace().collect();
    if parts.len() != 4 || parts[0] != "dim" || parts[2] != "components" {
        return Err(bad("malformed shape line"));
    }
    let dim: usize = parts[1].parse().map_err(|_| bad("bad dim"))?;
    let k: usize = parts[3].parse().map_err(|_| bad("bad component count"))?;

    let sums_line = next()?;
    // "sums sigma2 <v> u <v> v <v> q <v> n_obs <v>" — 11 tokens.
    let sp: Vec<&str> = sums_line.split_whitespace().collect();
    if sp.len() != 11 || sp[0] != "sums" {
        return Err(bad("malformed sums line"));
    }
    let num = |s: &str| s.parse::<f64>().map_err(|_| bad("bad number in sums"));
    let sigma2 = num(sp[2])?;
    let sum_u = num(sp[4])?;
    let sum_v = num(sp[6])?;
    let sum_q = num(sp[8])?;
    let n_obs: u64 = sp[10].parse().map_err(|_| bad("bad n_obs"))?;

    let parse_row = |line: String, tag: &str, len: usize| -> std::io::Result<Vec<f64>> {
        let mut it = line.split_whitespace();
        if it.next() != Some(tag) {
            return Err(bad(format!("expected '{tag}' row")));
        }
        let vals: Result<Vec<f64>, _> = it.map(|s| s.parse::<f64>()).collect();
        let vals = vals.map_err(|_| bad(format!("bad number in {tag} row")))?;
        if vals.len() != len {
            return Err(bad(format!("{tag} row length {} != {len}", vals.len())));
        }
        Ok(vals)
    };

    let values = parse_row(next()?, "values", k)?;
    let mut basis = Mat::zeros(dim, k);
    for j in 0..k {
        let col = parse_row(next()?, "vector", dim)?;
        basis.col_mut(j).copy_from_slice(&col);
    }
    let mean = parse_row(next()?, "mean", dim)?;

    let eig = EigenSystem {
        mean,
        basis,
        values,
        sigma2,
        sum_u,
        sum_v,
        sum_q,
        n_obs,
    };
    eig.check_invariants()
        .map_err(|e| bad(format!("snapshot violates invariants: {e}")))?;
    Ok(eig)
}

/// A control-port sink persisting every [`KIND_SNAPSHOT`] it receives:
/// `engine<k>_latest.snapshot` is overwritten each time, so the directory
/// always holds the freshest state per engine.
pub struct SnapshotWriter {
    dir: PathBuf,
    /// Snapshots written.
    pub written: u64,
}

impl SnapshotWriter {
    /// Writes snapshots under `dir` (created if missing).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        SnapshotWriter {
            dir: dir.into(),
            written: 0,
        }
    }

    /// The latest-snapshot path for an engine.
    pub fn latest_path(dir: &Path, engine: u32) -> PathBuf {
        dir.join(format!("engine{engine}_latest.snapshot"))
    }
}

impl Operator for SnapshotWriter {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}

    fn on_control(&mut self, t: ControlTuple, _ctx: &mut OpContext<'_>) {
        if t.kind != KIND_SNAPSHOT {
            return;
        }
        let Some(state) = t.payload_as::<PeerState>() else {
            return;
        };
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            eprintln!("SnapshotWriter: cannot create {}: {e}", self.dir.display());
            return;
        }
        let path = Self::latest_path(&self.dir, state.engine);
        match write_snapshot(&path, &state.eigensystem) {
            Ok(()) => self.written += 1,
            Err(e) => eprintln!("SnapshotWriter: write failed for {}: {e}", path.display()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_core::batch::batch_pca;
    use spca_spectra::PlantedSubspace;

    fn sample_eig() -> EigenSystem {
        let w = PlantedSubspace::new(10, 3, 0.05);
        let mut rng = StdRng::seed_from_u64(1);
        let data = w.sample_batch(&mut rng, 120);
        batch_pca(&data, 3).unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spca_persist_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn snapshot_round_trips_exactly() {
        let eig = sample_eig();
        let path = tmp("round.snapshot");
        write_snapshot(&path, &eig).unwrap();
        let back = read_snapshot(&path).unwrap();
        assert_eq!(back.dim(), eig.dim());
        assert_eq!(back.n_components(), eig.n_components());
        assert_eq!(back.n_obs, eig.n_obs);
        assert_eq!(back.sigma2.to_bits(), eig.sigma2.to_bits());
        assert_eq!(back.sum_v.to_bits(), eig.sum_v.to_bits());
        for (a, b) in back.mean.iter().zip(&eig.mean) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(back.basis.sub(&eig.basis).unwrap().max_abs() == 0.0);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_garbage() {
        let path = tmp("garbage.snapshot");
        std::fs::write(&path, "not a snapshot\n").unwrap();
        assert!(read_snapshot(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn rejects_truncation() {
        let eig = sample_eig();
        let path = tmp("trunc.snapshot");
        write_snapshot(&path, &eig).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        // Truncate at every possible line count: each must be a clean
        // `InvalidData` error, never a panic or a bogus eigensystem.
        let n_lines = content.lines().count();
        for keep in 0..n_lines {
            let cut: String = content
                .lines()
                .take(keep)
                .map(|l| format!("{l}\n"))
                .collect();
            std::fs::write(&path, cut).unwrap();
            let err = read_snapshot(&path).expect_err("truncated snapshot must not parse");
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "keep={keep}: expected InvalidData, got {err}"
            );
        }
        std::fs::remove_file(path).ok();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

        /// A valid snapshot truncated at *any* byte offset must come back
        /// as a clean `InvalidData` error — never a panic, never a
        /// plausible-but-wrong eigensystem. This covers torn writes at
        /// byte granularity, including a cut inside the final token of the
        /// last line (where every kept token still parses).
        #[test]
        fn truncation_at_any_byte_offset_is_invalid_data(frac in 0.0f64..1.0) {
            let eig = sample_eig();
            let path = tmp(&format!("bytetrunc_{:x}.snapshot", frac.to_bits()));
            write_snapshot(&path, &eig).unwrap();
            let bytes = std::fs::read(&path).unwrap();
            let cut = ((bytes.len() as f64) * frac) as usize;
            std::fs::write(&path, &bytes[..cut.min(bytes.len() - 1)]).unwrap();
            let err = read_snapshot(&path).expect_err("torn snapshot must not parse");
            std::fs::remove_file(&path).ok();
            proptest::prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        }

        /// A single-byte flip anywhere in a snapshot must never panic the
        /// decoder. The v1 text format has no payload checksum, so a flip
        /// confined to a digit of one float can still parse — but then the
        /// structure (dims, row counts) must be unchanged; any flip that
        /// breaks structure must surface as a clean `InvalidData`.
        #[test]
        fn corruption_at_any_byte_offset_never_panics(frac in 0.0f64..1.0) {
            let eig = sample_eig();
            let path = tmp(&format!("byteflip_{:x}.snapshot", frac.to_bits()));
            write_snapshot(&path, &eig).unwrap();
            let mut bytes = std::fs::read(&path).unwrap();
            std::fs::remove_file(&path).ok();
            let at = (((bytes.len() - 1) as f64) * frac) as usize;
            // Flip the low bit: unlike case-flips (0x20), this always
            // changes the token's value or validity.
            bytes[at] ^= 0x01;
            match decode_snapshot(&bytes) {
                Err(err) => proptest::prop_assert_eq!(err.kind(), std::io::ErrorKind::InvalidData),
                Ok(back) => {
                    // Parsed despite the flip: the damage stayed inside one
                    // numeric token, so the shape must be intact.
                    proptest::prop_assert_eq!(back.values.len(), eig.values.len());
                    proptest::prop_assert_eq!(back.mean.len(), eig.mean.len());
                }
            }
        }
    }

    #[test]
    fn byte_truncation_sweeps_every_offset() {
        // Exhaustive companion to the proptest: every prefix of a valid
        // snapshot is rejected with `InvalidData`.
        let eig = sample_eig();
        let path = tmp("bytesweep.snapshot");
        write_snapshot(&path, &eig).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for cut in 0..bytes.len() {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            let err = read_snapshot(&path).expect_err("torn snapshot must not parse");
            assert_eq!(
                err.kind(),
                std::io::ErrorKind::InvalidData,
                "cut at byte {cut}/{}: expected InvalidData, got {err}",
                bytes.len()
            );
        }
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn write_is_atomic_and_leaves_no_temp_files() {
        let dir = tmp("atomicdir");
        std::fs::create_dir_all(&dir).unwrap();
        let eig = sample_eig();
        let path = dir.join("engine0_recovery.snapshot");
        // Seed a good snapshot, then overwrite: the target must always be
        // complete, and no scratch files may remain.
        write_snapshot(&path, &eig).unwrap();
        write_snapshot(&path, &eig).unwrap();
        let entries: Vec<String> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        assert_eq!(
            entries,
            vec!["engine0_recovery.snapshot".to_string()],
            "temp files must not survive a successful write"
        );
        assert_eq!(read_snapshot(&path).unwrap().n_obs, eig.n_obs);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recovery_path_is_distinct_from_latest() {
        let d = Path::new("/snapdir");
        assert_eq!(
            recovery_path(d, 3),
            PathBuf::from("/snapdir/engine3_recovery.snapshot")
        );
        assert_ne!(recovery_path(d, 3), SnapshotWriter::latest_path(d, 3));
    }

    #[test]
    fn rejects_corrupted_invariants() {
        let eig = sample_eig();
        let path = tmp("corrupt.snapshot");
        write_snapshot(&path, &eig).unwrap();
        // Swap the eigenvalue order to break the descending invariant.
        let content = std::fs::read_to_string(&path).unwrap();
        let corrupted = content.replace("values", "values 999");
        // That makes the row too long → caught by length check; also test
        // a semantic corruption below.
        std::fs::write(&path, &corrupted).unwrap();
        assert!(read_snapshot(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn writer_persists_snapshots() {
        use spca_streams::operator::testing::with_ctx;
        let dir = tmp("snapdir");
        let mut w = SnapshotWriter::new(&dir);
        let eig = sample_eig();
        let msg = PeerState {
            engine: 2,
            eigensystem: eig.clone(),
            n_obs: eig.n_obs,
            shares_sent: 0,
            merges_applied: 0,
        };
        with_ctx(0, |ctx| {
            w.on_control(
                ControlTuple::new(KIND_SNAPSHOT, 2, std::sync::Arc::new(msg)),
                ctx,
            );
        });
        assert_eq!(w.written, 1);
        let latest = SnapshotWriter::latest_path(&dir, 2);
        let back = read_snapshot(&latest).unwrap();
        assert_eq!(back.n_obs, eig.n_obs);
        std::fs::remove_dir_all(dir).ok();
    }
}
