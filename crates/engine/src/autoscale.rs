//! Elastic autoscaling: live scale-out/scale-in with state migration.
//!
//! The paper motivates cloud elasticity — "dynamic scalable Cloud cluster
//! would be able to meet the demand of large data streams realtime
//! processing by adding additional nodes to the processing cluster when
//! needed" (§I) — and `spca-cluster` simulates the policy loop against
//! the DES. This module is the *live* half: the same [`ElasticPolicy`]
//! thresholds drive a real fleet of [`crate::pca_operator::StreamingPcaOp`]
//! engines, resizing it mid-stream without losing tuples or state.
//!
//! Mechanically, elasticity rides on three pieces the rest of the crate
//! already provides:
//!
//! * **Pre-provisioned standbys + prefix membership.** The dataflow
//!   topology is static (the builder wires `max_engines` engines up
//!   front), but which prefix of the fleet is *live* is a single shared
//!   [`spca_streams::ActiveSet`]. The split confines traffic to the
//!   active prefix, the sync controller reconciles its ring against it,
//!   and this module is the only writer.
//! * **Checkpoint-format bootstrap.** A joining engine is seeded from
//!   the merged eigensystem of the active fleet, round-tripped through
//!   the persistence byte format ([`persist::encode_snapshot`] /
//!   [`persist::decode_snapshot`]) — the exact bytes a checkpoint or
//!   recovery snapshot would carry, so the join path and the recovery
//!   path can never drift apart.
//! * **The `1.5·N` independence gate.** Installing bootstrap state does
//!   not touch the joining operator's `obs_since_sync` clock, so a
//!   freshly admitted engine is held out of *sharing* until it has
//!   accumulated `1.5·N` genuinely new observations — it re-passes the
//!   gate like any engine that just merged.
//!
//! Scale-in is the reverse: membership shrinks first (the split stops
//! routing to the retiring engine immediately), the retiring engine's
//! observation count is drain-polled until stable, and its final state is
//! folded into survivor 0 — after which the retiree is reset fresh so its
//! end-of-stream snapshot reports nothing and a later re-admission starts
//! clean. Observation *counts* in merged estimates double-count shared
//! history (inherent to merge-based sharing, see `ResultsHub`); tuple
//! conservation is exact and is what the regression tests pin.

use crate::persist;
use parking_lot::Mutex;
use spca_core::{merge, EigenSystem, RobustPca};
use spca_streams::metrics::{OpSnapshot, RateProbe};
use spca_streams::{ActiveSet, RunningEngine};
use std::sync::Arc;
use std::time::{Duration, Instant};

pub use spca_cluster::elastic::ElasticPolicy;

/// Why a rescale request was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScaleError {
    /// Already at the provisioned ceiling.
    AtCapacity,
    /// Already at one engine (the floor).
    AtFloor,
    /// State migration failed (checkpoint codec or merge rejection).
    Migration(String),
}

impl std::fmt::Display for ScaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScaleError::AtCapacity => write!(f, "fleet already at provisioned ceiling"),
            ScaleError::AtFloor => write!(f, "fleet already at one engine"),
            ScaleError::Migration(e) => write!(f, "state migration failed: {e}"),
        }
    }
}

/// One completed rescale, as recorded by the supervisor.
#[derive(Debug, Clone)]
pub struct ScaleEvent {
    /// Time since the supervisor started.
    pub at: Duration,
    /// Engines added (positive) or removed (negative).
    pub action: i64,
    /// Active engines after the rescale.
    pub active_after: usize,
    /// Wall-clock cost of the migration itself (bootstrap or drain+merge).
    pub latency: Duration,
}

/// The mechanics of a live rescale: flips membership and migrates state.
///
/// Obtain one from [`ElasticRuntime::new`] over the handles of an app
/// built with [`crate::AppConfig::max_engines`] set. The runtime is the
/// single writer of the shared [`ActiveSet`]; the split and the sync
/// controller are its readers.
pub struct ElasticRuntime {
    active: Arc<ActiveSet>,
    states: Vec<Arc<Mutex<RobustPca>>>,
    /// Drain poll cadence during scale-in.
    drain_poll: Duration,
    /// Consecutive unchanged polls before the retiree counts as drained.
    drain_stable: usize,
    /// Upper bound on drain polls (a stalled engine must not wedge the
    /// autoscaler forever).
    max_drain_polls: usize,
}

impl ElasticRuntime {
    /// Builds the runtime from an elastic app's handles; `None` when the
    /// app was not built with `max_engines`.
    pub fn new(handles: &crate::AppHandles) -> Option<Self> {
        let active = handles.active.as_ref()?;
        Some(ElasticRuntime::from_parts(
            Arc::clone(active),
            handles.engine_states.clone(),
        ))
    }

    /// Builds the runtime from the raw membership handle and state
    /// handles (one per provisioned engine, in engine order).
    pub fn from_parts(active: Arc<ActiveSet>, states: Vec<Arc<Mutex<RobustPca>>>) -> Self {
        assert_eq!(
            states.len(),
            active.max(),
            "need one state handle per provisioned engine"
        );
        ElasticRuntime {
            active,
            states,
            drain_poll: Duration::from_millis(2),
            drain_stable: 5,
            max_drain_polls: 500,
        }
    }

    /// Currently active engines.
    pub fn active(&self) -> usize {
        self.active.active()
    }

    /// Provisioned ceiling.
    pub fn max(&self) -> usize {
        self.active.max()
    }

    /// Merged eigensystem over the initialized engines of the active
    /// prefix — the live global estimate, and the bootstrap seed for a
    /// joining engine. `None` while every engine is still warming up.
    pub fn merged_active_eigensystem(&self) -> Option<EigenSystem> {
        let n = self.active.active();
        let mut acc: Option<EigenSystem> = None;
        for st in &self.states[..n] {
            let Some(eig) = st.lock().full_eigensystem().cloned() else {
                continue;
            };
            acc = Some(match acc {
                None => eig,
                Some(a) => merge(&a, &eig).ok()?,
            });
        }
        acc
    }

    /// Admits the next standby engine: bootstraps it from the active
    /// fleet's merged eigensystem via the checkpoint byte format, then
    /// grows the membership prefix. Returns the new active count.
    ///
    /// The admitted engine starts *receiving* traffic immediately but
    /// will not *share* state until its `1.5·N` independence gate
    /// re-passes on fresh observations.
    pub fn scale_out(&self) -> Result<usize, ScaleError> {
        let cur = self.active.active();
        if cur >= self.active.max() {
            return Err(ScaleError::AtCapacity);
        }
        let joining = cur; // membership is a prefix: next index joins
        if let Some(merged) = self.merged_active_eigensystem() {
            // Round-trip through the persistence format: the join path
            // exercises the exact bytes recovery would replay.
            let bytes = persist::encode_snapshot(&merged);
            let eig = persist::decode_snapshot(&bytes)
                .map_err(|e| ScaleError::Migration(e.to_string()))?;
            self.states[joining]
                .lock()
                .install_eigensystem(eig)
                .map_err(|e| ScaleError::Migration(e.to_string()))?;
        }
        // Cold fleet (nobody initialized yet): admit with a fresh state —
        // the newcomer warms up exactly like a seed engine.
        Ok(self.active.set_active(cur + 1))
    }

    /// Retires the highest active engine: shrinks membership first (the
    /// split stops routing to it at once), drains its in-flight queue,
    /// folds its final state into engine 0, and resets it fresh so a
    /// later re-admission (or the end-of-stream snapshot) starts clean.
    /// Returns the new active count.
    pub fn scale_in(&self) -> Result<usize, ScaleError> {
        let cur = self.active.active();
        if cur <= 1 {
            return Err(ScaleError::AtFloor);
        }
        let retiring = cur - 1;
        let now = self.active.set_active(cur - 1);

        // Drain: the split no longer routes here, so once the observation
        // count stops moving the queued tail has been absorbed.
        let mut last = self.states[retiring].lock().n_obs();
        let mut stable = 0;
        for _ in 0..self.max_drain_polls {
            std::thread::sleep(self.drain_poll);
            let n_obs = self.states[retiring].lock().n_obs();
            if n_obs == last {
                stable += 1;
                if stable >= self.drain_stable {
                    break;
                }
            } else {
                stable = 0;
                last = n_obs;
            }
        }

        // Take the retiree's final estimate and reset it under one lock:
        // nothing can slip between the read and the reset.
        let retired = {
            let mut st = self.states[retiring].lock();
            let eig = st.full_eigensystem().cloned();
            let cfg = st.config().clone();
            *st = RobustPca::new(cfg);
            eig
        };
        if let Some(eig) = retired {
            let mut survivor = self.states[0].lock();
            let merged = match survivor.full_eigensystem() {
                Some(own) => merge(own, &eig).map_err(|e| ScaleError::Migration(e.to_string()))?,
                // Survivor still warming up: adopt the retiree's estimate.
                None => eig,
            };
            survivor
                .install_eigensystem(merged)
                .map_err(|e| ScaleError::Migration(e.to_string()))?;
        }
        Ok(now)
    }
}

/// Per-epoch measurements the supervisor bases its decision on.
struct EpochWindow {
    probe: RateProbe,
    backlog: u64,
    started: Instant,
}

/// The live autoscaler: probes the running dataflow's throughput and
/// queue growth every epoch, feeds the measurements into the *same*
/// [`ElasticPolicy::decide`] the DES simulation uses, and executes the
/// resulting rescales through an [`ElasticRuntime`].
///
/// Offered load is estimated as `achieved + queue growth`: when the
/// fleet keeps up, queues are flat and offered == achieved; when it
/// falls behind, the backlog between the source and the engines grows
/// and the difference is exactly the unmet demand. Capacity at a pool
/// size is extrapolated from the peak per-engine throughput observed so
/// far (the engines are homogeneous replicas).
pub struct ElasticSupervisor {
    policy: ElasticPolicy,
    runtime: ElasticRuntime,
    epoch: Duration,
    started: Instant,
    window: Option<EpochWindow>,
    since_action: usize,
    peak_per_engine: f64,
    /// Every rescale executed so far, in order.
    pub events: Vec<ScaleEvent>,
}

impl ElasticSupervisor {
    /// A supervisor over `runtime` deciding once per `epoch`, with the
    /// default policy (the same [`ElasticPolicy::default`] that
    /// calibrates the DES simulation) bounded to the runtime's fleet.
    pub fn new(runtime: ElasticRuntime, epoch: Duration) -> Self {
        let policy = ElasticPolicy {
            min_engines: 1,
            max_engines: runtime.max(),
            ..ElasticPolicy::default()
        };
        ElasticSupervisor {
            policy,
            runtime,
            epoch,
            started: Instant::now(),
            window: None,
            since_action: 0,
            peak_per_engine: 0.0,
            events: Vec::new(),
        }
    }

    /// Overrides the scaling policy (bounds are clamped to the fleet).
    pub fn with_policy(mut self, mut policy: ElasticPolicy) -> Self {
        policy.max_engines = policy.max_engines.min(self.runtime.max());
        policy.min_engines = policy.min_engines.max(1);
        self.policy = policy;
        self
    }

    /// The underlying runtime (e.g. for a final merged estimate).
    pub fn runtime(&self) -> &ElasticRuntime {
        &self.runtime
    }

    /// Tuples emitted by the source but not yet absorbed by an engine.
    fn backlog(snapshots: &[(String, OpSnapshot)]) -> u64 {
        let mut produced = 0u64;
        let mut absorbed = 0u64;
        for (name, s) in snapshots {
            if name == "source" {
                produced = s.tuples_out;
            } else if name.starts_with("pca-") {
                absorbed += s.tuples_in;
            }
        }
        produced.saturating_sub(absorbed)
    }

    /// One supervisor step: cheap until a full epoch has elapsed, then
    /// measures, decides, and executes at most one rescale action.
    /// Returns the event if a rescale happened. Call this from the
    /// application's polling loop while the engine runs.
    pub fn tick(&mut self, running: &RunningEngine) -> Option<ScaleEvent> {
        let named = running.op_snapshots();
        let Some(window) = &self.window else {
            self.window = Some(EpochWindow {
                probe: RateProbe::start(named.iter().map(|(_, s)| *s).collect()),
                backlog: Self::backlog(&named),
                started: Instant::now(),
            });
            return None;
        };
        if window.started.elapsed() < self.epoch {
            return None;
        }

        let snaps: Vec<OpSnapshot> = named.iter().map(|(_, s)| *s).collect();
        let achieved = window
            .probe
            .total_rate_in(&snaps, |i| named[i].0.starts_with("pca-"));
        let dt = window.started.elapsed().as_secs_f64().max(1e-9);
        let backlog_now = Self::backlog(&named);
        let growth = (backlog_now as f64 - window.backlog as f64) / dt;
        let offered = achieved + growth.max(0.0);

        // Re-arm the measurement window before deciding, so a slow
        // migration does not stretch the next epoch's denominator.
        self.window = Some(EpochWindow {
            probe: RateProbe::start(snaps),
            backlog: backlog_now,
            started: Instant::now(),
        });

        let active = self.runtime.active();
        if achieved <= f64::EPSILON {
            // Warm-up or idle stream: no throughput signal to act on.
            self.since_action = self.since_action.saturating_add(1);
            return None;
        }
        self.peak_per_engine = self.peak_per_engine.max(achieved / active as f64);
        let per_engine = self.peak_per_engine;
        let action = self.policy.decide(
            offered,
            active,
            |n| per_engine * n as f64,
            self.since_action,
        );
        if action == 0 {
            self.since_action = self.since_action.saturating_add(1);
            return None;
        }

        let migration_start = Instant::now();
        let mut applied = 0i64;
        for _ in 0..action.unsigned_abs() {
            let step = if action > 0 {
                self.runtime.scale_out()
            } else {
                self.runtime.scale_in()
            };
            match step {
                Ok(_) => applied += action.signum(),
                Err(ScaleError::AtCapacity) | Err(ScaleError::AtFloor) => break,
                Err(e) => {
                    eprintln!("autoscaler: rescale aborted: {e}");
                    break;
                }
            }
        }
        self.since_action = 0;
        if applied == 0 {
            return None;
        }
        let event = ScaleEvent {
            at: self.started.elapsed(),
            action: applied,
            active_after: self.runtime.active(),
            latency: migration_start.elapsed(),
        };
        self.events.push(event.clone());
        Some(event)
    }

    /// Scale-outs and scale-ins executed so far (events, not engines).
    pub fn event_counts(&self) -> (usize, usize) {
        let outs = self.events.iter().filter(|e| e.action > 0).count();
        let ins = self.events.iter().filter(|e| e.action < 0).count();
        (outs, ins)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use spca_core::PcaConfig;
    use spca_spectra::PlantedSubspace;

    const D: usize = 12;

    fn cfg() -> PcaConfig {
        PcaConfig::new(D, 2)
            .with_memory(200)
            .with_init_size(20)
            .with_extra(0)
    }

    fn warmed_state(seed: u64, n: u64) -> Arc<Mutex<RobustPca>> {
        let mut pca = RobustPca::new(cfg());
        let w = PlantedSubspace::new(D, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..n {
            pca.update(&w.sample(&mut rng)).unwrap();
        }
        Arc::new(Mutex::new(pca))
    }

    fn fresh_state() -> Arc<Mutex<RobustPca>> {
        Arc::new(Mutex::new(RobustPca::new(cfg())))
    }

    #[test]
    fn scale_out_bootstraps_the_standby_from_the_merged_estimate() {
        let active = ActiveSet::new(2, 3);
        let states = vec![warmed_state(1, 400), warmed_state(2, 400), fresh_state()];
        let rt = ElasticRuntime::from_parts(Arc::clone(&active), states.clone());
        assert!(states[2].lock().full_eigensystem().is_none());

        assert_eq!(rt.scale_out().unwrap(), 3);
        assert_eq!(active.active(), 3);
        let boot = states[2].lock().full_eigensystem().cloned().unwrap();
        boot.check_invariants().unwrap();
        // Bootstrapped from the merge: carries both donors' history.
        assert_eq!(boot.n_obs, 800);
        let merged = rt.merged_active_eigensystem().unwrap();
        merged.check_invariants().unwrap();

        // Ceiling reached.
        assert_eq!(rt.scale_out(), Err(ScaleError::AtCapacity));
    }

    #[test]
    fn scale_out_on_a_cold_fleet_admits_a_fresh_engine() {
        let active = ActiveSet::new(1, 2);
        let states = vec![fresh_state(), fresh_state()];
        let rt = ElasticRuntime::from_parts(Arc::clone(&active), states.clone());
        assert_eq!(rt.scale_out().unwrap(), 2);
        assert!(states[1].lock().full_eigensystem().is_none());
    }

    #[test]
    fn scale_in_folds_the_retiree_into_the_survivor_and_resets_it() {
        let active = ActiveSet::new(2, 2);
        let states = vec![warmed_state(3, 300), warmed_state(4, 500)];
        let rt = ElasticRuntime::from_parts(Arc::clone(&active), states.clone());
        let before = states[0].lock().full_eigensystem().unwrap().n_obs;

        assert_eq!(rt.scale_in().unwrap(), 1);
        assert_eq!(active.active(), 1);
        let survivor = states[0].lock().full_eigensystem().cloned().unwrap();
        survivor.check_invariants().unwrap();
        assert_eq!(
            survivor.n_obs,
            before + 500,
            "merge folds the retiree's observations into the survivor"
        );
        // The retiree is reset: its end-of-stream snapshot reports nothing
        // and a re-admission starts from the bootstrap, not stale state.
        assert!(states[1].lock().full_eigensystem().is_none());
        assert_eq!(states[1].lock().n_obs(), 0);

        // Floor reached.
        assert_eq!(rt.scale_in(), Err(ScaleError::AtFloor));
    }

    #[test]
    fn rescale_round_trip_preserves_the_subspace() {
        // out → in must return (approximately) the state it started from.
        let active = ActiveSet::new(1, 2);
        let states = vec![warmed_state(5, 800), fresh_state()];
        let rt = ElasticRuntime::from_parts(Arc::clone(&active), states.clone());
        let before = states[0].lock().full_eigensystem().cloned().unwrap();
        rt.scale_out().unwrap();
        rt.scale_in().unwrap();
        let after = states[0].lock().full_eigensystem().cloned().unwrap();
        let d = spca_core::metrics::subspace_distance(&before.basis, &after.basis).unwrap();
        assert!(d < 1e-6, "rescale round trip moved the basis by {d}");
    }

    #[test]
    fn drain_waits_for_a_still_processing_retiree() {
        let active = ActiveSet::new(2, 2);
        let states = vec![warmed_state(6, 300), warmed_state(7, 300)];
        let rt = ElasticRuntime::from_parts(Arc::clone(&active), states.clone());
        // A writer thread keeps feeding the retiring engine for a little
        // while after the membership flip, simulating the queued tail.
        let retiree = Arc::clone(&states[1]);
        let writer = std::thread::spawn(move || {
            let w = PlantedSubspace::new(D, 2, 0.05);
            let mut rng = StdRng::seed_from_u64(8);
            for _ in 0..50 {
                retiree.lock().update(&w.sample(&mut rng)).unwrap();
                std::thread::sleep(Duration::from_micros(200));
            }
        });
        let n = rt.scale_in().unwrap();
        writer.join().unwrap();
        assert_eq!(n, 1);
        let survivor = states[0].lock().full_eigensystem().cloned().unwrap();
        // 300 own + 300 retiree + the tail the drain absorbed. A sliver of
        // the 50-tuple tail may race past the stability window, but the
        // drain must have captured most of it.
        assert!(
            survivor.n_obs >= 600,
            "survivor lost the retiree's history: {}",
            survivor.n_obs
        );
    }

    #[test]
    fn supervisor_policy_bounds_are_clamped_to_the_fleet() {
        let active = ActiveSet::new(1, 3);
        let states = vec![fresh_state(), fresh_state(), fresh_state()];
        let rt = ElasticRuntime::from_parts(active, states);
        let sup =
            ElasticSupervisor::new(rt, Duration::from_millis(10)).with_policy(ElasticPolicy {
                max_engines: 100,
                min_engines: 0,
                ..ElasticPolicy::default()
            });
        assert_eq!(sup.policy.max_engines, 3);
        assert_eq!(sup.policy.min_engines, 1);
    }

    #[test]
    fn backlog_is_source_minus_engines() {
        let snap = |tin: u64, tout: u64| OpSnapshot {
            tuples_in: tin,
            tuples_out: tout,
            ..OpSnapshot::default()
        };
        let named = vec![
            ("source".to_string(), snap(0, 1000)),
            ("split".to_string(), snap(980, 960)),
            ("pca-0".to_string(), snap(500, 0)),
            ("pca-1".to_string(), snap(430, 0)),
            ("monitor".to_string(), snap(7, 0)),
        ];
        assert_eq!(ElasticSupervisor::backlog(&named), 70);
    }

    #[test]
    fn cold_fleet_random_updates_do_not_break_rescale() {
        // Fuzz the admit/retire sequence against invariant checks.
        let active = ActiveSet::new(1, 3);
        let states = vec![warmed_state(9, 100), fresh_state(), fresh_state()];
        let rt = ElasticRuntime::from_parts(Arc::clone(&active), states.clone());
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..12 {
            if rng.gen_bool(0.5) {
                let _ = rt.scale_out();
            } else {
                let _ = rt.scale_in();
            }
            if let Some(eig) = rt.merged_active_eigensystem() {
                eig.check_invariants().unwrap();
            }
            let n = active.active();
            assert!((1..=3).contains(&n));
        }
    }
}
