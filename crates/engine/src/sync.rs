//! The synchronization controller (§III-B, Fig. 3).
//!
//! "The synchronization control subsystem contains the C class generating
//! the sequence of output tuples with sender and receiver number. In our
//! basic case of circular synchronization, receiver number = sender number
//! + 1. When the largest sender number is reached … loops the cycle."
//!
//! The controller is a *source* operator: it produces one sync command per
//! drive, paced either internally (its own period) or by wiring a
//! [`spca_streams::ops::Throttle`] between the controller and the engines'
//! control ports, exactly as the paper uses the SPL `Throttle`. Output
//! port `i` connects to engine `i`'s control port; the command tells that
//! engine which of *its* peer-state ports to share on.

use crate::messages::{
    Heartbeat, PeerState, SyncCommand, KIND_HEARTBEAT, KIND_SNAPSHOT, KIND_SYNC_COMMAND,
};
use spca_streams::checkpoint::{decode_kv, encode_kv, kv_parse, kv_u64, Checkpoint};
use spca_streams::{ActiveSet, ControlTuple, DataTuple, OpContext, Operator, SourceState};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Synchronization topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncStrategy {
    /// Circular pattern (Fig. 3): each tick, engine `cursor` sends its
    /// state to engine `cursor + 1 (mod n)`. "A simple circular
    /// synchronization pattern can achieve reasonable global solutions
    /// while minimizing the network traffic."
    Ring,
    /// Each tick, engine `cursor` broadcasts to every other engine.
    Broadcast,
    /// Engines are partitioned into groups of the given size; each tick,
    /// the cursor engine shares with its whole group.
    Groups(usize),
    /// No synchronization at all (ablation baseline).
    None,
}

impl SyncStrategy {
    /// The peer-state ports engine `sender` must be wired to, out of `n`
    /// engines: the application builder uses this to create exactly the
    /// edges each strategy needs, and the controller to index them.
    pub fn peers_of(&self, sender: usize, n: usize) -> Vec<usize> {
        match *self {
            SyncStrategy::Ring => {
                if n <= 1 {
                    Vec::new()
                } else {
                    vec![(sender + 1) % n]
                }
            }
            SyncStrategy::Broadcast => (0..n).filter(|&j| j != sender).collect(),
            SyncStrategy::Groups(g) => {
                let g = g.max(1);
                let group = sender / g;
                (group * g..((group + 1) * g).min(n))
                    .filter(|&j| j != sender)
                    .collect()
            }
            SyncStrategy::None => Vec::new(),
        }
    }
}

/// Liveness tracking for failure-aware synchronization: who has been
/// heard from (heartbeats or snapshots on the controller's control input)
/// and how recently.
struct Liveness {
    /// An engine is considered dead once silent for longer than this.
    timeout: Duration,
    /// Engines that have *never* spoken get this long after the first
    /// drive before being declared dead (startup grace).
    grace: Duration,
    /// Set on the first drive; anchors the startup grace window.
    started: Option<Instant>,
    /// Last time each engine was heard from.
    heard: Vec<Option<Instant>>,
}

/// The controller operator. Drives one command per period, addressed to a
/// rotating sender.
///
/// With [`SyncController::with_liveness`] the controller becomes
/// failure-aware: engines report liveness (heartbeats / snapshots routed
/// to the controller's control port), dead or lagging engines are skipped
/// as senders and filtered out as receivers, and a ring is re-closed
/// around the gap. Liveness mode assumes *full-mesh* peer wiring (every
/// engine has a peer-state port to every other engine, in ascending
/// engine order), because the surviving receiver set is not known until
/// command time.
pub struct SyncController {
    strategy: SyncStrategy,
    n_engines: usize,
    period: Duration,
    cursor: usize,
    last: Option<Instant>,
    liveness: Option<Liveness>,
    /// Elastic membership: when set, the controller reconciles its ring
    /// against the shared active count on every drive — admitting engines
    /// the autoscaler activated and retiring ones it shut down.
    membership: Option<Arc<ActiveSet>>,
    /// Commands issued so far.
    pub issued: u64,
    /// Ticks where the rotating sender was skipped as dead, plus ticks
    /// where a live sender had no live receiver left.
    pub skipped_dead: u64,
    /// Malformed or foreign control tuples ignored instead of acted on: a
    /// liveness-bearing kind whose payload fails the typed downcast, whose
    /// payload contradicts its `sender` header, or whose sender is out of
    /// range. The controller must never panic on junk from the mesh — a
    /// poisoned control tuple would otherwise kill the whole sync loop.
    pub ignored_control: u64,
}

impl SyncController {
    /// A controller over `n_engines` engines firing every `period`.
    pub fn new(strategy: SyncStrategy, n_engines: usize, period: Duration) -> Self {
        SyncController {
            strategy,
            n_engines,
            period,
            cursor: 0,
            last: None,
            liveness: None,
            membership: None,
            issued: 0,
            skipped_dead: 0,
            ignored_control: 0,
        }
    }

    /// Enables failure-aware mode: an engine silent for `timeout` is
    /// treated as dead (never-heard engines get `grace` from the first
    /// drive). Requires full-mesh peer wiring (see the type docs);
    /// `crate::build` does this automatically when
    /// `AppConfig::failure_aware_sync` is set.
    pub fn with_liveness(mut self, timeout: Duration, grace: Duration) -> Self {
        self.liveness = Some(Liveness {
            timeout,
            grace,
            started: None,
            heard: vec![None; self.n_engines],
        });
        self
    }

    /// Tracks the autoscaler's shared active-engine count: on every drive
    /// the controller grows or shrinks its ring (and liveness table) to
    /// match `active.active()`. Requires full-mesh peer wiring over the
    /// *provisioned* fleet, exactly like liveness mode — the port map
    /// (`j` for `j < sender`, else `j - 1`) is membership-independent
    /// there, so admitted engines need no rewiring.
    pub fn with_membership(mut self, active: Arc<ActiveSet>) -> Self {
        self.membership = Some(active);
        self
    }

    /// Grows the ring by one engine (the next provisioned index). The
    /// liveness table grows with it, and the newcomer is stamped as
    /// freshly heard so it gets one full timeout to start heartbeating
    /// before being skipped as dead — the moral equivalent of the startup
    /// grace, re-granted at admission.
    pub fn admit_engine(&mut self) {
        self.n_engines += 1;
        if let Some(lv) = self.liveness.as_mut() {
            lv.heard.push(Some(Instant::now()));
            debug_assert_eq!(lv.heard.len(), self.n_engines);
        }
    }

    /// Shrinks the ring by one engine (the highest index — membership is
    /// a prefix). The liveness table shrinks with it and the rotation
    /// cursor is re-clamped so it keeps visiting every remaining engine.
    /// Saturates at one engine.
    pub fn retire_engine(&mut self) {
        if self.n_engines <= 1 {
            return;
        }
        self.n_engines -= 1;
        if let Some(lv) = self.liveness.as_mut() {
            lv.heard.truncate(self.n_engines);
        }
        self.cursor %= self.n_engines;
    }

    /// Reconciles the ring with the shared membership handle, counting
    /// each admission/retirement as a scale event in the run report.
    fn reconcile_membership(&mut self, ctx: &mut OpContext<'_>) {
        let Some(target) = self.membership.as_ref().map(|m| m.active()) else {
            return;
        };
        while self.n_engines < target {
            self.admit_engine();
            ctx.add_scale_out();
        }
        while self.n_engines > target && self.n_engines > 1 {
            self.retire_engine();
            ctx.add_scale_in();
        }
    }

    /// Whether engine `i` currently counts as alive.
    fn alive(&self, i: usize) -> bool {
        match &self.liveness {
            None => true,
            Some(lv) => match lv.heard[i] {
                Some(t) => t.elapsed() < lv.timeout,
                None => lv.started.is_none_or(|s| s.elapsed() < lv.grace),
            },
        }
    }

    /// The engines `sender` should share with right now. Without liveness
    /// this is exactly the strategy's peer set; with it, dead receivers
    /// are dropped and a ring walks forward to the next live engine so
    /// the cycle stays closed around a gap.
    fn receivers_of(&self, sender: usize) -> Vec<usize> {
        if self.liveness.is_none() {
            return self.strategy.peers_of(sender, self.n_engines);
        }
        match self.strategy {
            SyncStrategy::Ring => {
                for step in 1..self.n_engines {
                    let j = (sender + step) % self.n_engines;
                    if self.alive(j) {
                        return vec![j];
                    }
                }
                Vec::new()
            }
            _ => self
                .strategy
                .peers_of(sender, self.n_engines)
                .into_iter()
                .filter(|&j| self.alive(j))
                .collect(),
        }
    }

    /// The command that will be sent to `sender`.
    fn command_for(&self, sender: usize) -> SyncCommand {
        let share_ports = if self.liveness.is_some() {
            // Full-mesh wiring: engine `sender`'s peer port for engine `j`
            // is `j` for j < sender and `j - 1` above (ascending order,
            // self omitted).
            self.receivers_of(sender)
                .into_iter()
                .map(|j| if j < sender { j } else { j - 1 })
                .collect()
        } else {
            // Legacy wiring: exactly the strategy's peers, in order.
            (0..self.strategy.peers_of(sender, self.n_engines).len()).collect()
        };
        SyncCommand { share_ports }
    }
}

impl Operator for SyncController {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}

    fn on_control(&mut self, t: ControlTuple, _ctx: &mut OpContext<'_>) {
        if self.liveness.is_none() {
            return;
        }
        // Validate before trusting: a malformed or foreign control tuple
        // (wrong payload type, payload/header sender mismatch, out-of-range
        // sender) is *ignored with a counter*, never unwrapped — one junk
        // tuple on the mesh must not kill the sync loop or let a spoofed
        // header keep a dead engine "alive".
        let claimed = match t.kind {
            KIND_HEARTBEAT => t.payload_as::<Heartbeat>().map(|h| h.engine),
            KIND_SNAPSHOT => t.payload_as::<PeerState>().map(|s| s.engine),
            _ => return, // not a liveness-bearing kind; none of our business
        };
        let lv = self.liveness.as_mut().expect("checked above");
        match claimed {
            Some(engine) if engine == t.sender && (engine as usize) < lv.heard.len() => {
                lv.heard[engine as usize] = Some(Instant::now());
            }
            _ => self.ignored_control += 1,
        }
    }

    fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
        if matches!(self.strategy, SyncStrategy::None) {
            return SourceState::Done;
        }
        self.reconcile_membership(ctx);
        if self.n_engines <= 1 {
            // With elastic membership a one-engine fleet can grow back:
            // stay scheduled and idle instead of finishing the controller.
            return if self.membership.is_some() {
                SourceState::Idle
            } else {
                SourceState::Done
            };
        }
        if let Some(lv) = &mut self.liveness {
            lv.started.get_or_insert_with(Instant::now);
        }
        if let Some(last) = self.last {
            if last.elapsed() < self.period {
                return SourceState::Idle;
            }
        }
        self.last = Some(Instant::now());
        // One command per tick; with liveness on, dead senders are skipped
        // within the tick so a single gap cannot stall the whole rotation.
        for _ in 0..self.n_engines {
            let sender = self.cursor;
            self.cursor = (self.cursor + 1) % self.n_engines;
            if !self.alive(sender) {
                self.skipped_dead += 1;
                ctx.add_sync_skip();
                continue;
            }
            let cmd = self.command_for(sender);
            if cmd.share_ports.is_empty() {
                if self.liveness.is_some() {
                    // A live sender with nobody live to talk to is still a
                    // skipped exchange — make it visible in the report.
                    self.skipped_dead += 1;
                    ctx.add_sync_skip();
                }
                return SourceState::Idle;
            }
            ctx.emit_control(
                sender,
                ControlTuple::new(KIND_SYNC_COMMAND, sender as u32, Arc::new(cmd)),
            );
            self.issued += 1;
            return SourceState::Emitted;
        }
        SourceState::Idle
    }

    fn checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

/// The controller's durable state is its rotation cursor and the exchange
/// counters. Wall-clock anchors (`last`, liveness timestamps) deliberately
/// do not survive: after a restart the pacing timer re-arms and every
/// engine gets a fresh startup grace window, so a controller that was down
/// for longer than the liveness timeout does not wrongly declare the whole
/// fleet dead on its first post-restart drive.
impl Checkpoint for SyncController {
    fn snapshot(&self) -> Vec<u8> {
        encode_kv(&[
            ("cursor", self.cursor.to_string()),
            ("issued", self.issued.to_string()),
            ("skipped_dead", self.skipped_dead.to_string()),
            ("ignored_control", self.ignored_control.to_string()),
        ])
    }

    fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let kv = decode_kv(bytes)?;
        self.cursor = kv_parse(&kv, "cursor")?;
        self.issued = kv_u64(&kv, "issued")?;
        self.skipped_dead = kv_u64(&kv, "skipped_dead")?;
        self.ignored_control = kv_u64(&kv, "ignored_control")?;
        self.cursor %= self.n_engines.max(1);
        self.last = None;
        if let Some(lv) = self.liveness.as_mut() {
            lv.started = None;
            lv.heard = vec![None; self.n_engines];
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spca_streams::operator::testing::with_ctx;
    use spca_streams::Tuple;

    #[test]
    fn ring_peers_follow_circle() {
        let s = SyncStrategy::Ring;
        assert_eq!(s.peers_of(0, 4), vec![1]);
        assert_eq!(s.peers_of(3, 4), vec![0]);
        assert!(s.peers_of(0, 1).is_empty());
    }

    #[test]
    fn broadcast_peers_are_everyone_else() {
        let s = SyncStrategy::Broadcast;
        assert_eq!(s.peers_of(1, 4), vec![0, 2, 3]);
    }

    #[test]
    fn groups_partition_correctly() {
        let s = SyncStrategy::Groups(2);
        assert_eq!(s.peers_of(0, 6), vec![1]);
        assert_eq!(s.peers_of(1, 6), vec![0]);
        assert_eq!(s.peers_of(4, 6), vec![5]);
        // Trailing partial group.
        let s3 = SyncStrategy::Groups(4);
        assert_eq!(s3.peers_of(5, 6), vec![4]);
    }

    #[test]
    fn controller_rotates_senders() {
        let mut c = SyncController::new(SyncStrategy::Ring, 3, Duration::from_millis(1));
        let sink = with_ctx(3, |ctx| {
            for _ in 0..3 {
                // Wait out the period between drives.
                while c.drive(ctx) == SourceState::Idle {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        });
        // One command per engine port, in rotation.
        for (port, q) in sink.ports.iter().enumerate() {
            assert_eq!(q.len(), 1, "port {port} got {} commands", q.len());
            match &q[0] {
                Tuple::Control(c) => {
                    assert_eq!(c.kind, KIND_SYNC_COMMAND);
                    assert_eq!(c.sender as usize, port);
                    let cmd = c.payload_as::<SyncCommand>().unwrap();
                    assert_eq!(cmd.share_ports, vec![0]); // ring: one peer port
                }
                other => panic!("expected control, got {other:?}"),
            }
        }
        assert_eq!(c.issued, 3);
    }

    #[test]
    fn none_strategy_finishes_immediately() {
        let mut c = SyncController::new(SyncStrategy::None, 4, Duration::from_millis(1));
        with_ctx(4, |ctx| {
            assert_eq!(c.drive(ctx), SourceState::Done);
        });
    }

    #[test]
    fn single_engine_needs_no_sync() {
        let mut c = SyncController::new(SyncStrategy::Ring, 1, Duration::from_millis(1));
        with_ctx(1, |ctx| {
            assert_eq!(c.drive(ctx), SourceState::Done);
        });
    }

    #[test]
    fn broadcast_command_lists_all_ports() {
        let mut c = SyncController::new(SyncStrategy::Broadcast, 4, Duration::from_micros(1));
        let sink = with_ctx(4, |ctx| while c.drive(ctx) == SourceState::Idle {});
        match &sink.ports[0][0] {
            Tuple::Control(ct) => {
                let cmd = ct.payload_as::<SyncCommand>().unwrap();
                assert_eq!(cmd.share_ports, vec![0, 1, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    // ---- failure-aware mode ----

    fn beat(c: &mut SyncController, engine: u32) {
        with_ctx(0, |ctx| {
            c.on_control(
                ControlTuple::new(
                    KIND_HEARTBEAT,
                    engine,
                    Arc::new(Heartbeat { engine, n_obs: 1 }),
                ),
                ctx,
            );
        });
    }

    fn shared_ports(
        sink: &spca_streams::operator::testing::CaptureSink,
        port: usize,
    ) -> Vec<usize> {
        match &sink.ports[port][0] {
            Tuple::Control(ct) => ct.payload_as::<SyncCommand>().unwrap().share_ports.clone(),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn liveness_recloses_ring_around_dead_engine() {
        use spca_streams::metrics::OpCounters;
        use spca_streams::operator::testing::{with_sink_counters, CaptureSink};
        let mut c = SyncController::new(SyncStrategy::Ring, 4, Duration::from_millis(1))
            .with_liveness(Duration::from_secs(60), Duration::ZERO);
        for e in [0u32, 2, 3] {
            beat(&mut c, e); // engine 1 stays silent → dead past the grace
        }
        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(4);
        with_sink_counters(&mut sink, &counters, |ctx| {
            let mut emitted = 0;
            while emitted < 3 {
                match c.drive(ctx) {
                    SourceState::Emitted => emitted += 1,
                    _ => std::thread::sleep(Duration::from_micros(200)),
                }
            }
        });
        // Rotation 0 → (1 skipped dead) → 2 → 3.
        assert_eq!(c.skipped_dead, 1);
        assert_eq!(counters.snapshot().sync_skips, 1);
        assert!(sink.ports[1].is_empty(), "dead engine must get no commands");
        // Full-mesh port map: engine 0's port for peer 2 is 1; engine 2's
        // for peer 3 is 2; engine 3's for peer 0 is 0. The ring is closed
        // around the dead engine, not broken at it.
        assert_eq!(
            shared_ports(&sink, 0),
            vec![1],
            "0 shares with 2, not dead 1"
        );
        assert_eq!(shared_ports(&sink, 2), vec![2], "2 shares with 3");
        assert_eq!(shared_ports(&sink, 3), vec![0], "3 closes the cycle at 0");
    }

    #[test]
    fn restarted_engine_is_readmitted_after_heartbeat() {
        let mut c = SyncController::new(SyncStrategy::Ring, 2, Duration::from_micros(10))
            .with_liveness(Duration::from_secs(60), Duration::ZERO);
        beat(&mut c, 0);
        with_ctx(2, |ctx| {
            for _ in 0..20 {
                c.drive(ctx);
                std::thread::sleep(Duration::from_micros(20));
            }
        });
        assert_eq!(c.issued, 0, "no exchange possible with one live engine");
        assert!(c.skipped_dead > 0);
        beat(&mut c, 1); // the restarted engine announces itself
        let sink = with_ctx(2, |ctx| {
            while c.drive(ctx) != SourceState::Emitted {
                std::thread::sleep(Duration::from_micros(20));
            }
        });
        assert_eq!(c.issued, 1);
        assert_eq!(
            sink.ports.iter().map(|p| p.len()).sum::<usize>(),
            1,
            "exactly one command once both engines are live"
        );
    }

    #[test]
    fn broadcast_receivers_filtered_to_live_engines() {
        let mut c = SyncController::new(SyncStrategy::Broadcast, 4, Duration::from_micros(10))
            .with_liveness(Duration::from_secs(60), Duration::ZERO);
        for e in [0u32, 1, 3] {
            beat(&mut c, e);
        }
        let sink = with_ctx(4, |ctx| {
            while c.drive(ctx) != SourceState::Emitted {
                std::thread::sleep(Duration::from_micros(20));
            }
        });
        // Sender 0's full-mesh ports: 1 → 0, 2 → 1, 3 → 2; dead 2 dropped.
        assert_eq!(shared_ports(&sink, 0), vec![0, 2]);
    }

    #[test]
    fn junk_control_tuples_are_ignored_with_counter_not_a_panic() {
        let mut c = SyncController::new(SyncStrategy::Ring, 2, Duration::from_micros(10))
            .with_liveness(Duration::from_millis(50), Duration::ZERO);
        with_ctx(2, |ctx| {
            // Heartbeat kind carrying a completely foreign payload.
            c.on_control(
                ControlTuple::new(KIND_HEARTBEAT, 0, Arc::new("junk".to_string())),
                ctx,
            );
            // Snapshot kind with a unit payload (signal-only tuple).
            c.on_control(ControlTuple::signal(KIND_SNAPSHOT, 1), ctx);
            // Spoofed header: payload says engine 1, header says engine 0.
            c.on_control(
                ControlTuple::new(
                    KIND_HEARTBEAT,
                    0,
                    Arc::new(Heartbeat {
                        engine: 1,
                        n_obs: 1,
                    }),
                ),
                ctx,
            );
            // Out-of-range sender.
            c.on_control(
                ControlTuple::new(
                    KIND_HEARTBEAT,
                    9,
                    Arc::new(Heartbeat {
                        engine: 9,
                        n_obs: 1,
                    }),
                ),
                ctx,
            );
            // A kind the controller does not care about is not "junk".
            c.on_control(ControlTuple::signal(KIND_SYNC_COMMAND, 0), ctx);
        });
        assert_eq!(c.ignored_control, 4);
        // None of the junk registered liveness: both engines still unheard.
        let lv = c.liveness.as_ref().unwrap();
        assert!(lv.heard.iter().all(|h| h.is_none()));
        // A well-formed heartbeat still works.
        beat(&mut c, 0);
        assert!(c.liveness.as_ref().unwrap().heard[0].is_some());
        assert_eq!(c.ignored_control, 4);
    }

    #[test]
    fn controller_checkpoint_round_trips_cursor_but_resets_liveness() {
        let mut c = SyncController::new(SyncStrategy::Ring, 4, Duration::from_micros(1))
            .with_liveness(Duration::from_millis(50), Duration::ZERO);
        beat(&mut c, 0);
        c.cursor = 3;
        c.issued = 7;
        c.skipped_dead = 2;
        c.ignored_control = 1;
        let bytes = Checkpoint::snapshot(&c);
        let mut r = SyncController::new(SyncStrategy::Ring, 4, Duration::from_micros(1))
            .with_liveness(Duration::from_millis(50), Duration::ZERO);
        r.restore(&bytes).unwrap();
        assert_eq!(r.cursor, 3);
        assert_eq!(r.issued, 7);
        assert_eq!(r.skipped_dead, 2);
        assert_eq!(r.ignored_control, 1);
        // Liveness starts over: no engine is condemned by pre-crash silence.
        let lv = r.liveness.as_ref().unwrap();
        assert!(lv.started.is_none());
        assert!(lv.heard.iter().all(|h| h.is_none()));
    }

    // ---- elastic membership (admit/retire) ----

    /// Collects one full rotation of sync commands and returns the set of
    /// sender ports that emitted.
    fn senders_in_rotation(c: &mut SyncController, n_ports: usize, rounds: usize) -> Vec<usize> {
        let sink = with_ctx(n_ports, |ctx| {
            let mut emitted = 0;
            while emitted < rounds {
                match c.drive(ctx) {
                    SourceState::Emitted => emitted += 1,
                    _ => std::thread::sleep(Duration::from_micros(50)),
                }
            }
        });
        (0..n_ports)
            .filter(|&p| !sink.ports[p].is_empty())
            .collect()
    }

    #[test]
    fn ring_grows_then_shrinks_without_losing_the_cursor() {
        // Regression: liveness tables and the rotation cursor used to be
        // sized once at construction, so growing the fleet indexed out of
        // bounds and shrinking could leave the cursor past the end.
        let mut c = SyncController::new(SyncStrategy::Ring, 2, Duration::from_micros(10))
            .with_liveness(Duration::from_secs(60), Duration::from_secs(60));
        // Grow 2 -> 4: both newcomers must join the rotation and the
        // liveness table must cover them (no out-of-bounds panic when they
        // heartbeat or when the rotation reaches them).
        c.admit_engine();
        c.admit_engine();
        beat(&mut c, 2);
        beat(&mut c, 3);
        let senders = senders_in_rotation(&mut c, 4, 4);
        assert_eq!(
            senders,
            vec![0, 1, 2, 3],
            "rotation must cover the grown ring"
        );

        // Shrink 4 -> 3 with the cursor parked on the retired engine.
        c.cursor = 3;
        c.retire_engine();
        assert!(c.cursor < 3, "cursor must be re-clamped after retirement");
        let senders = senders_in_rotation(&mut c, 4, 3);
        assert_eq!(
            senders,
            vec![0, 1, 2],
            "retired engine must leave the rotation"
        );
        // Commands never address the retired engine as a receiver either.
        let sink = with_ctx(4, |ctx| {
            let mut emitted = 0;
            while emitted < 6 {
                match c.drive(ctx) {
                    SourceState::Emitted => emitted += 1,
                    _ => std::thread::sleep(Duration::from_micros(50)),
                }
            }
        });
        for port in 0..3 {
            for t in &sink.ports[port] {
                let Tuple::Control(ct) = t else { continue };
                let cmd = ct.payload_as::<SyncCommand>().unwrap();
                // Sender `port`'s peer port for engine 3 is 2 in full-mesh
                // order (3 > sender for every remaining sender).
                assert!(
                    !cmd.share_ports.contains(&2),
                    "sender {port} still shares with retired engine: {cmd:?}"
                );
            }
        }
        assert!(sink.ports[3].is_empty(), "retired engine got a command");
    }

    #[test]
    fn retirement_saturates_at_one_engine() {
        let mut c = SyncController::new(SyncStrategy::Ring, 2, Duration::from_micros(10));
        c.retire_engine();
        c.retire_engine();
        c.retire_engine();
        // Still valid: one engine, cursor 0, and drive finishes cleanly
        // (no membership handle, so a 1-engine ring is done).
        with_ctx(2, |ctx| {
            assert_eq!(c.drive(ctx), SourceState::Done);
        });
    }

    #[test]
    fn membership_handle_drives_admission_and_retirement() {
        use spca_streams::metrics::OpCounters;
        use spca_streams::operator::testing::{with_sink_counters, CaptureSink};
        let active = ActiveSet::new(1, 3);
        let mut c = SyncController::new(SyncStrategy::Ring, 1, Duration::from_micros(10))
            .with_liveness(Duration::from_secs(60), Duration::from_secs(60))
            .with_membership(Arc::clone(&active));

        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(3);
        with_sink_counters(&mut sink, &counters, |ctx| {
            // One active engine: idle (not Done — the fleet can grow).
            assert_eq!(c.drive(ctx), SourceState::Idle);
            // Autoscaler admits two engines; the controller reconciles on
            // the next drive and the ring starts rotating over all three.
            active.set_active(3);
            let mut emitted = 0;
            while emitted < 3 {
                match c.drive(ctx) {
                    SourceState::Emitted => emitted += 1,
                    _ => std::thread::sleep(Duration::from_micros(50)),
                }
            }
        });
        let snap = counters.snapshot();
        assert_eq!(snap.scale_outs, 2, "two admissions = two scale-out events");
        assert_eq!(snap.scale_ins, 0);
        assert!(
            (0..3).all(|p| !sink.ports[p].is_empty()),
            "all three rotate"
        );

        // Scale back in to one engine.
        let mut sink2 = CaptureSink::new(3);
        active.set_active(1);
        with_sink_counters(&mut sink2, &counters, |ctx| {
            assert_eq!(c.drive(ctx), SourceState::Idle);
        });
        let snap = counters.snapshot();
        assert_eq!(snap.scale_ins, 2, "two retirements = two scale-in events");
    }

    #[test]
    fn startup_grace_treats_silent_engines_as_alive() {
        let mut c = SyncController::new(SyncStrategy::Ring, 3, Duration::from_micros(10))
            .with_liveness(Duration::from_millis(100), Duration::from_secs(60));
        let sink = with_ctx(3, |ctx| {
            while c.drive(ctx) != SourceState::Emitted {
                std::thread::sleep(Duration::from_micros(20));
            }
        });
        assert_eq!(c.skipped_dead, 0, "grace period: nobody is dead yet");
        assert_eq!(shared_ports(&sink, 0), vec![0]);
    }
}
