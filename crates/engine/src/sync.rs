//! The synchronization controller (§III-B, Fig. 3).
//!
//! "The synchronization control subsystem contains the C class generating
//! the sequence of output tuples with sender and receiver number. In our
//! basic case of circular synchronization, receiver number = sender number
//! + 1. When the largest sender number is reached … loops the cycle."
//!
//! The controller is a *source* operator: it produces one sync command per
//! drive, paced either internally (its own period) or by wiring a
//! [`spca_streams::ops::Throttle`] between the controller and the engines'
//! control ports, exactly as the paper uses the SPL `Throttle`. Output
//! port `i` connects to engine `i`'s control port; the command tells that
//! engine which of *its* peer-state ports to share on.

use crate::messages::{SyncCommand, KIND_SYNC_COMMAND};
use spca_streams::{ControlTuple, DataTuple, OpContext, Operator, SourceState};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Synchronization topologies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncStrategy {
    /// Circular pattern (Fig. 3): each tick, engine `cursor` sends its
    /// state to engine `cursor + 1 (mod n)`. "A simple circular
    /// synchronization pattern can achieve reasonable global solutions
    /// while minimizing the network traffic."
    Ring,
    /// Each tick, engine `cursor` broadcasts to every other engine.
    Broadcast,
    /// Engines are partitioned into groups of the given size; each tick,
    /// the cursor engine shares with its whole group.
    Groups(usize),
    /// No synchronization at all (ablation baseline).
    None,
}

impl SyncStrategy {
    /// The peer-state ports engine `sender` must be wired to, out of `n`
    /// engines: the application builder uses this to create exactly the
    /// edges each strategy needs, and the controller to index them.
    pub fn peers_of(&self, sender: usize, n: usize) -> Vec<usize> {
        match *self {
            SyncStrategy::Ring => {
                if n <= 1 {
                    Vec::new()
                } else {
                    vec![(sender + 1) % n]
                }
            }
            SyncStrategy::Broadcast => (0..n).filter(|&j| j != sender).collect(),
            SyncStrategy::Groups(g) => {
                let g = g.max(1);
                let group = sender / g;
                (group * g..((group + 1) * g).min(n))
                    .filter(|&j| j != sender)
                    .collect()
            }
            SyncStrategy::None => Vec::new(),
        }
    }
}

/// The controller operator. Drives one command per period, addressed to a
/// rotating sender.
pub struct SyncController {
    strategy: SyncStrategy,
    n_engines: usize,
    period: Duration,
    cursor: usize,
    last: Option<Instant>,
    /// Commands issued so far.
    pub issued: u64,
}

impl SyncController {
    /// A controller over `n_engines` engines firing every `period`.
    pub fn new(strategy: SyncStrategy, n_engines: usize, period: Duration) -> Self {
        SyncController {
            strategy,
            n_engines,
            period,
            cursor: 0,
            last: None,
            issued: 0,
        }
    }

    /// The command that will be sent to `sender`: share on all of its peer
    /// ports (the builder wires exactly the strategy's peers).
    fn command_for(&self, sender: usize) -> SyncCommand {
        let n_ports = self.strategy.peers_of(sender, self.n_engines).len();
        SyncCommand {
            share_ports: (0..n_ports).collect(),
        }
    }
}

impl Operator for SyncController {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}

    fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
        if matches!(self.strategy, SyncStrategy::None) || self.n_engines <= 1 {
            return SourceState::Done;
        }
        if let Some(last) = self.last {
            if last.elapsed() < self.period {
                return SourceState::Idle;
            }
        }
        self.last = Some(Instant::now());
        let sender = self.cursor;
        self.cursor = (self.cursor + 1) % self.n_engines;
        let cmd = self.command_for(sender);
        if cmd.share_ports.is_empty() {
            return SourceState::Idle;
        }
        ctx.emit_control(
            sender,
            ControlTuple::new(KIND_SYNC_COMMAND, sender as u32, Arc::new(cmd)),
        );
        self.issued += 1;
        SourceState::Emitted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spca_streams::operator::testing::with_ctx;
    use spca_streams::Tuple;

    #[test]
    fn ring_peers_follow_circle() {
        let s = SyncStrategy::Ring;
        assert_eq!(s.peers_of(0, 4), vec![1]);
        assert_eq!(s.peers_of(3, 4), vec![0]);
        assert!(s.peers_of(0, 1).is_empty());
    }

    #[test]
    fn broadcast_peers_are_everyone_else() {
        let s = SyncStrategy::Broadcast;
        assert_eq!(s.peers_of(1, 4), vec![0, 2, 3]);
    }

    #[test]
    fn groups_partition_correctly() {
        let s = SyncStrategy::Groups(2);
        assert_eq!(s.peers_of(0, 6), vec![1]);
        assert_eq!(s.peers_of(1, 6), vec![0]);
        assert_eq!(s.peers_of(4, 6), vec![5]);
        // Trailing partial group.
        let s3 = SyncStrategy::Groups(4);
        assert_eq!(s3.peers_of(5, 6), vec![4]);
    }

    #[test]
    fn controller_rotates_senders() {
        let mut c = SyncController::new(SyncStrategy::Ring, 3, Duration::from_millis(1));
        let sink = with_ctx(3, |ctx| {
            for _ in 0..3 {
                // Wait out the period between drives.
                while c.drive(ctx) == SourceState::Idle {
                    std::thread::sleep(Duration::from_micros(200));
                }
            }
        });
        // One command per engine port, in rotation.
        for (port, q) in sink.ports.iter().enumerate() {
            assert_eq!(q.len(), 1, "port {port} got {} commands", q.len());
            match &q[0] {
                Tuple::Control(c) => {
                    assert_eq!(c.kind, KIND_SYNC_COMMAND);
                    assert_eq!(c.sender as usize, port);
                    let cmd = c.payload_as::<SyncCommand>().unwrap();
                    assert_eq!(cmd.share_ports, vec![0]); // ring: one peer port
                }
                other => panic!("expected control, got {other:?}"),
            }
        }
        assert_eq!(c.issued, 3);
    }

    #[test]
    fn none_strategy_finishes_immediately() {
        let mut c = SyncController::new(SyncStrategy::None, 4, Duration::from_millis(1));
        with_ctx(4, |ctx| {
            assert_eq!(c.drive(ctx), SourceState::Done);
        });
    }

    #[test]
    fn single_engine_needs_no_sync() {
        let mut c = SyncController::new(SyncStrategy::Ring, 1, Duration::from_millis(1));
        with_ctx(1, |ctx| {
            assert_eq!(c.drive(ctx), SourceState::Done);
        });
    }

    #[test]
    fn broadcast_command_lists_all_ports() {
        let mut c = SyncController::new(SyncStrategy::Broadcast, 4, Duration::from_micros(1));
        let sink = with_ctx(4, |ctx| while c.drive(ctx) == SourceState::Idle {});
        match &sink.ports[0][0] {
            Tuple::Control(ct) => {
                let cmd = ct.payload_as::<SyncCommand>().unwrap();
                assert_eq!(cmd.share_ports, vec![0, 1, 2]);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
