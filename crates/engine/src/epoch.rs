//! Epoch-versioned, lock-free eigensystem snapshot store.
//!
//! The streaming update path publishes immutable, epoch-numbered
//! [`EigenSnapshot`]s; serving threads read the latest snapshot without
//! taking any lock. The design goals, in priority order:
//!
//! 1. **The writer never blocks on readers.** A publish is one atomic
//!    pointer swap plus bookkeeping under a writer-only mutex that no
//!    reader ever touches. A reader stuck mid-query delays *reclamation*
//!    of old snapshots, never the swap itself.
//! 2. **Publishing never allocates.** The snapshot-box pool is
//!    [`prewarm`]ed at build time and retired boxes are recycled through
//!    a free list; the eigensystem copy into a recycled box reuses its
//!    buffers ([`EigenSystem::copy_from`]). If stalled readers ever hold
//!    every pooled box hostage, [`try_checkout`] returns `None` and the
//!    publish is *shed* (readers keep the previous epoch) rather than
//!    allocating — a stalled reader degrades snapshot freshness, never
//!    the update path. Better than the one-Arc minimum of an arc-swap
//!    design, and compatible with the alloc-counter guards on the update
//!    path.
//! 3. **Readers are wait-free in the common case.** A read pins the
//!    current snapshot via a per-reader epoch slot (a single `SeqCst`
//!    store plus a revalidation load) and then dereferences the shared
//!    pointer directly — no reference-count contention between readers.
//!
//! [`prewarm`]: EpochStore::prewarm
//! [`try_checkout`]: EpochStore::try_checkout
//!
//! # Reclamation scheme
//!
//! Safe reclamation without `crossbeam-epoch` (not vendored) uses the
//! classic three-epoch scheme. A global epoch `G` advances only when
//! every *active* reader is pinned at `G`. A retired snapshot is tagged
//! with the epoch at retirement and freed once `tag + 2 ≤ G`:
//!
//! * A reader pinned at epoch `e` blocks advancement beyond `e + 1`,
//!   so while it is pinned `G ≤ e + 1`.
//! * Any snapshot the reader can still hold a pointer to was current at
//!   some point at-or-after its pin, so that snapshot's retirement tag
//!   is `≥ e`.
//! * Freeable snapshots have `tag ≤ G − 2 ≤ e − 1 < e` — strictly older
//!   than anything the reader can see. ∎
//!
//! The pin protocol closes the announce/load race by revalidating: store
//! the epoch tag, then re-read the global epoch; if it moved, re-announce.
//! After a successful pin the store of the slot is ordered (`SeqCst`)
//! before the writer's subsequent epoch scan, so the writer cannot miss
//! an active reader.

use spca_core::EigenSystem;
use std::sync::atomic::{AtomicPtr, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Maximum simultaneously registered reader handles. Serving threads are
/// a small fixed pool, so a small fixed slot table keeps the writer's
/// epoch scan O(1) with no allocation.
pub const MAX_READERS: usize = 64;

/// Slot encodings: `u64::MAX` = unregistered, even = registered but not
/// pinned, `(epoch << 1) | 1` = pinned at `epoch`.
const SLOT_FREE: u64 = u64::MAX;
const SLOT_IDLE: u64 = 0;

/// Base capacity of the recycling free list — headroom for boxes minted
/// by the allocating [`EpochStore::checkout`] convenience path. Every
/// [`EpochStore::prewarm`] call *grows* the store's cap by the number of
/// boxes it adds, so the cap always covers the total prewarmed across
/// however many publishing operators share the store and reclamation
/// never sheds a pooled box (which would silently free heap memory on
/// the update thread and shrink the zero-allocation pool). Snapshots are
/// small (one (p+q)-component eigensystem), so headroom costs little.
const FREE_LIST_BASE_CAP: usize = 64;

/// How many snapshot boxes each publishing operator should
/// [`EpochStore::prewarm`] into the pool. Steady state keeps ~2 boxes in
/// flight (one current, one retired awaiting its grace period); the
/// slack covers reclamation lag from stalled readers before publishes
/// start shedding.
pub const PREWARM_PER_WRITER: usize = 8;

/// An immutable, epoch-numbered view of an engine's eigensystem.
#[derive(Debug)]
pub struct EigenSnapshot {
    /// Monotonically increasing publish sequence number (1-based).
    pub epoch: u64,
    /// The tracked eigensystem (all `p + q` components).
    pub eig: EigenSystem,
    /// Number of components queries should report (the configured `p`).
    pub p: usize,
}

struct WriterState {
    /// Retired snapshots tagged with the global epoch at retirement.
    garbage: Vec<(u64, *mut EigenSnapshot)>,
    /// Recycled boxes handed back out by [`EpochStore::checkout`]. The
    /// boxing is load-bearing: each box round-trips through
    /// `Box::into_raw` in `publish`, so it must stay its own stable heap
    /// allocation rather than an inline element.
    #[allow(clippy::vec_box)]
    free: Vec<Box<EigenSnapshot>>,
    /// Free-list capacity: [`FREE_LIST_BASE_CAP`] plus every box ever
    /// [`EpochStore::prewarm`]ed, so pooled boxes are never dropped on
    /// recycle/collect no matter how many writers share the store.
    free_cap: usize,
}

// The raw pointers in `garbage` refer to heap allocations owned solely by
// the store once retired; they are only dereferenced (freed) under the
// writer mutex after the grace period proves no reader can observe them.
unsafe impl Send for WriterState {}

/// The lock-free snapshot store. See the module docs for the scheme.
pub struct EpochStore {
    /// Latest published snapshot (null until the first publish).
    current: AtomicPtr<EigenSnapshot>,
    /// Reclamation epoch `G` (not the snapshot sequence number).
    global: AtomicU64,
    /// Per-reader pin slots.
    slots: [AtomicU64; MAX_READERS],
    /// Snapshot sequence numbering; `epoch()` is the latest published.
    seq: AtomicU64,
    writer: Mutex<WriterState>,
}

impl Default for EpochStore {
    fn default() -> Self {
        Self::new()
    }
}

impl EpochStore {
    /// An empty store (no snapshot published yet).
    pub fn new() -> Self {
        EpochStore {
            current: AtomicPtr::new(std::ptr::null_mut()),
            global: AtomicU64::new(0),
            slots: std::array::from_fn(|_| AtomicU64::new(SLOT_FREE)),
            seq: AtomicU64::new(0),
            writer: Mutex::new(WriterState {
                // Generous headroom: with well-behaved (request-scoped)
                // pins, at most a handful of retirees await their grace
                // period, but the publish path must stay allocation-free
                // even if slow readers stall advancement for a while.
                garbage: Vec::with_capacity(8 * FREE_LIST_BASE_CAP),
                free: Vec::with_capacity(FREE_LIST_BASE_CAP),
                free_cap: FREE_LIST_BASE_CAP,
            }),
        }
    }

    /// The epoch of the latest published snapshot (0 = none yet).
    pub fn epoch(&self) -> u64 {
        self.seq.load(Ordering::Acquire)
    }

    /// Pre-allocates `n` snapshot boxes into the free list, each with
    /// eigensystem buffers sized for a `d × k` system so the first
    /// [`EigenSystem::copy_from`] into it reuses capacity. Call once at
    /// build time: afterwards [`try_checkout`] never allocates and the
    /// fill never grows a buffer, so the publish path performs no heap
    /// allocations at all — from the very first publish.
    ///
    /// [`try_checkout`]: EpochStore::try_checkout
    pub fn prewarm(&self, n: usize, d: usize, k: usize) {
        let mut w = self.writer.lock().unwrap();
        // Grow the recycling cap with the pool so collect/recycle never
        // shed a prewarmed box, however many writers share this store.
        w.free_cap += n;
        w.free.reserve(n);
        for _ in 0..n {
            w.free.push(Box::new(EigenSnapshot {
                epoch: 0,
                eig: EigenSystem::zeros(d, k),
                p: 0,
            }));
        }
    }

    fn empty_box() -> Box<EigenSnapshot> {
        Box::new(EigenSnapshot {
            epoch: 0,
            eig: EigenSystem::zeros(0, 0),
            p: 0,
        })
    }

    /// Takes a recycled snapshot buffer to fill for the next publish
    /// (its `EigenSystem` buffers are reused by
    /// [`EigenSystem::copy_from`] — no allocation), or `None` when the
    /// [`prewarm`]ed pool is exhausted because stalled readers are
    /// holding every retired box hostage. The update path then *skips*
    /// the publish — readers keep the previous epoch — so a stalled
    /// reader degrades snapshot freshness, never the update path: this
    /// method performs no heap allocation under any circumstances.
    ///
    /// [`prewarm`]: EpochStore::prewarm
    pub fn try_checkout(&self) -> Option<Box<EigenSnapshot>> {
        let mut w = self.writer.lock().unwrap();
        // A stalled reader may have parked reclamation between publishes;
        // give the epoch a chance to advance before giving up.
        self.try_advance();
        self.collect(&mut w);
        w.free.pop()
    }

    /// Like [`EpochStore::try_checkout`], but allocates a fresh box when
    /// the pool is dry instead of shedding. For offline use and tests;
    /// the streaming update path uses `try_checkout`.
    pub fn checkout(&self) -> Box<EigenSnapshot> {
        self.try_checkout().unwrap_or_else(Self::empty_box)
    }

    /// Returns a checked-out buffer that will not be published (e.g. the
    /// estimator turned out to still be warming up) to the pool, so the
    /// pool never shrinks on such a bail-out.
    pub fn recycle(&self, snap: Box<EigenSnapshot>) {
        let mut w = self.writer.lock().unwrap();
        if w.free.len() < w.free_cap {
            w.free.push(snap);
        }
    }

    /// Publishes a filled snapshot buffer: assigns the next epoch number,
    /// swaps it in as current, and retires the previous snapshot. Returns
    /// the assigned epoch. Never blocks on readers.
    pub fn publish(&self, mut snap: Box<EigenSnapshot>) -> u64 {
        let mut w = self.writer.lock().unwrap();
        let epoch = self.seq.load(Ordering::Relaxed) + 1;
        snap.epoch = epoch;
        let new = Box::into_raw(snap);
        let old = self.current.swap(new, Ordering::AcqRel);
        // The sequence number only becomes visible after the pointer swap,
        // so `epoch() == n` implies a load observes at least epoch n.
        self.seq.store(epoch, Ordering::Release);
        if !old.is_null() {
            let tag = self.global.load(Ordering::SeqCst);
            w.garbage.push((tag, old));
        }
        self.try_advance();
        self.collect(&mut w);
        epoch
    }

    /// Advances the global epoch if every active reader is pinned at it.
    fn try_advance(&self) {
        let g = self.global.load(Ordering::SeqCst);
        for slot in &self.slots {
            let s = slot.load(Ordering::SeqCst);
            if s != SLOT_FREE && s & 1 == 1 && s >> 1 != g {
                return;
            }
        }
        // A stale advance by a concurrent publisher is harmless: both CAS
        // to g+1 and only one wins.
        let _ = self
            .global
            .compare_exchange(g, g + 1, Ordering::SeqCst, Ordering::SeqCst);
    }

    /// Frees (recycles) retired snapshots whose grace period has elapsed.
    fn collect(&self, w: &mut WriterState) {
        let g = self.global.load(Ordering::SeqCst);
        let mut i = 0;
        while i < w.garbage.len() {
            let (tag, ptr) = w.garbage[i];
            if tag + 2 <= g {
                w.garbage.swap_remove(i);
                // SAFETY: retired at epoch `tag`, and `tag + 2 <= G` means
                // every reader pinned since has observed a strictly newer
                // snapshot (see module docs); we are the sole owner.
                let boxed = unsafe { Box::from_raw(ptr) };
                if w.free.len() < w.free_cap {
                    w.free.push(boxed);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Registers a reader, claiming a pin slot. Returns `None` when all
    /// [`MAX_READERS`] slots are taken. The reader shares ownership of
    /// the store, so a serving thread can keep it alongside the `Arc` it
    /// was created from.
    pub fn reader(self: &Arc<Self>) -> Option<EpochReader> {
        for (i, slot) in self.slots.iter().enumerate() {
            if slot
                .compare_exchange(SLOT_FREE, SLOT_IDLE, Ordering::SeqCst, Ordering::SeqCst)
                .is_ok()
            {
                return Some(EpochReader {
                    store: Arc::clone(self),
                    slot: i,
                });
            }
        }
        None
    }
}

impl Drop for EpochStore {
    fn drop(&mut self) {
        let cur = *self.current.get_mut();
        if !cur.is_null() {
            // SAFETY: exclusive access in Drop; the pointer came from
            // Box::into_raw in publish.
            drop(unsafe { Box::from_raw(cur) });
        }
        let w = self.writer.get_mut().unwrap();
        for (_, ptr) in w.garbage.drain(..) {
            // SAFETY: as above — retired boxes are solely owned here.
            drop(unsafe { Box::from_raw(ptr) });
        }
    }
}

// SAFETY: all shared mutation goes through atomics or the writer mutex;
// the raw snapshot pointers are only freed after the epoch grace period.
unsafe impl Send for EpochStore {}
unsafe impl Sync for EpochStore {}

/// A registered reader owning one pin slot (and a share of the store).
/// Cheap to keep per serving thread; dropping it releases the slot.
pub struct EpochReader {
    store: Arc<EpochStore>,
    slot: usize,
}

impl EpochReader {
    /// Pins the current snapshot for reading. Returns `None` before the
    /// first publish. The returned guard keeps the snapshot alive (by
    /// stalling reclamation, not the writer) until dropped.
    pub fn pin(&mut self) -> Option<PinnedSnapshot<'_>> {
        let slot = &self.store.slots[self.slot];
        let mut g = self.store.global.load(Ordering::SeqCst);
        loop {
            slot.store((g << 1) | 1, Ordering::SeqCst);
            let now = self.store.global.load(Ordering::SeqCst);
            if now == g {
                break;
            }
            g = now;
        }
        let ptr = self.store.current.load(Ordering::Acquire);
        if ptr.is_null() {
            slot.store(SLOT_IDLE, Ordering::SeqCst);
            return None;
        }
        // SAFETY: the pin slot (validated against the current global
        // epoch) guarantees this snapshot outlives the guard — the grace
        // period cannot elapse while we are pinned (module docs).
        let snap = unsafe { &*ptr };
        Some(PinnedSnapshot { snap, slot })
    }
}

impl Drop for EpochReader {
    fn drop(&mut self) {
        self.store.slots[self.slot].store(SLOT_FREE, Ordering::SeqCst);
    }
}

/// A pinned snapshot. Dereferences to [`EigenSnapshot`]; the pin is
/// released on drop. Hold it only for the duration of one query — a
/// long-lived pin delays snapshot reclamation (never the writer).
pub struct PinnedSnapshot<'r> {
    snap: &'r EigenSnapshot,
    slot: &'r AtomicU64,
}

impl std::ops::Deref for PinnedSnapshot<'_> {
    type Target = EigenSnapshot;
    fn deref(&self) -> &EigenSnapshot {
        self.snap
    }
}

impl Drop for PinnedSnapshot<'_> {
    fn drop(&mut self) {
        self.slot.store(SLOT_IDLE, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spca_core::{PcaConfig, RobustPca};

    fn small_eig(seed: u64) -> EigenSystem {
        let mut pca = RobustPca::new(PcaConfig::new(8, 2));
        for i in 0..40u64 {
            let t = (seed + i) as f64;
            let x: Vec<f64> = (0..8).map(|j| ((t * 0.7 + j as f64).sin()) * 2.0).collect();
            pca.update(&x).unwrap();
        }
        pca.full_eigensystem().unwrap().clone()
    }

    #[test]
    fn empty_store_reads_none() {
        let store = Arc::new(EpochStore::new());
        let mut r = store.reader().unwrap();
        assert!(r.pin().is_none());
        assert_eq!(store.epoch(), 0);
    }

    #[test]
    fn publish_and_read_roundtrip() {
        let store = Arc::new(EpochStore::new());
        let src = small_eig(3);
        let mut buf = store.checkout();
        buf.eig.copy_from(&src);
        buf.p = 2;
        assert_eq!(store.publish(buf), 1);
        assert_eq!(store.epoch(), 1);

        let mut r = store.reader().unwrap();
        let pinned = r.pin().unwrap();
        assert_eq!(pinned.epoch, 1);
        assert_eq!(pinned.p, 2);
        assert_eq!(pinned.eig.mean, src.mean);
        assert_eq!(pinned.eig.basis.as_slice(), src.basis.as_slice());
    }

    #[test]
    fn epochs_are_monotonic_and_latest_wins() {
        let store = Arc::new(EpochStore::new());
        for i in 0..10 {
            let mut buf = store.checkout();
            buf.eig.copy_from(&small_eig(i));
            buf.p = 2;
            let e = store.publish(buf);
            assert_eq!(e, i + 1);
        }
        let mut r = store.reader().unwrap();
        assert_eq!(r.pin().unwrap().epoch, 10);
    }

    #[test]
    fn free_list_recycles_retired_snapshots() {
        let store = Arc::new(EpochStore::new());
        // With no readers pinned, each publish advances the epoch and the
        // retired box becomes reclaimable after two more publishes; the
        // checkout before publish must start hitting the free list.
        for i in 0..20 {
            let mut buf = store.checkout();
            buf.eig.copy_from(&small_eig(i));
            buf.p = 2;
            store.publish(buf);
        }
        let w = store.writer.lock().unwrap();
        assert!(
            !w.free.is_empty() || !w.garbage.is_empty(),
            "retired snapshots should be in the free list or awaiting a grace period"
        );
        assert!(w.garbage.len() <= 2, "garbage must not accumulate");
    }

    #[test]
    fn pinned_reader_does_not_block_publishes() {
        let store = Arc::new(EpochStore::new());
        let mut buf = store.checkout();
        buf.eig.copy_from(&small_eig(0));
        store.publish(buf);

        let mut r = store.reader().unwrap();
        let pinned = r.pin().unwrap();
        assert_eq!(pinned.epoch, 1);
        // Writer keeps publishing while the reader holds a pin; the
        // pinned snapshot's contents must stay intact throughout.
        let mean0 = pinned.eig.mean.clone();
        for i in 1..50 {
            let mut buf = store.checkout();
            buf.eig.copy_from(&small_eig(i));
            store.publish(buf);
        }
        assert_eq!(store.epoch(), 50);
        assert_eq!(pinned.epoch, 1);
        assert_eq!(pinned.eig.mean, mean0);
        drop(pinned);
        assert_eq!(r.pin().unwrap().epoch, 50);
    }

    #[test]
    fn exhausted_pool_sheds_instead_of_allocating() {
        let store = Arc::new(EpochStore::new());
        store.prewarm(3, 8, 4);

        let mut buf = store.checkout();
        buf.eig.copy_from(&small_eig(0));
        store.publish(buf);
        let mut r = store.reader().unwrap();
        let pinned = r.pin().unwrap();

        // With a reader pinned, retired boxes cannot be reclaimed, so
        // the prewarmed pool drains and `try_checkout` starts shedding
        // instead of allocating.
        let mut published = 1u64;
        while let Some(mut buf) = store.try_checkout() {
            buf.eig.copy_from(&small_eig(published));
            store.publish(buf);
            published += 1;
            assert!(
                published < 100,
                "pool must be bounded under a pinned reader"
            );
        }
        assert_eq!(pinned.epoch, 1, "the pinned snapshot stays intact");
        drop(pinned);
        drop(r);

        // Once the reader unpins, reclamation resumes: a couple of
        // publishes advance the epoch past the grace period and checkouts
        // succeed again from recycled boxes.
        for i in 0..3 {
            let mut buf = store.checkout();
            buf.eig.copy_from(&small_eig(100 + i));
            store.publish(buf);
        }
        assert!(
            store.try_checkout().is_some(),
            "recycled boxes must flow back after the reader unpins"
        );
    }

    #[test]
    fn free_list_cap_scales_with_prewarmed_writers() {
        let store = Arc::new(EpochStore::new());
        // Far more publishing operators than the base cap covers: every
        // prewarmed box must still survive a checkout/recycle round trip
        // (the cap grows with the pool; nothing is silently dropped).
        let writers = 3 * FREE_LIST_BASE_CAP / PREWARM_PER_WRITER;
        for _ in 0..writers {
            store.prewarm(PREWARM_PER_WRITER, 4, 2);
        }
        let total = writers * PREWARM_PER_WRITER;
        let boxes: Vec<_> = (0..total)
            .map(|_| store.try_checkout().expect("prewarmed box"))
            .collect();
        assert!(store.try_checkout().is_none(), "pool fully drained");
        for b in boxes {
            store.recycle(b);
        }
        for i in 0..total {
            assert!(
                store.try_checkout().is_some(),
                "box {i}/{total} was shed by the free-list cap"
            );
        }
    }

    #[test]
    fn recycle_returns_unpublished_buffers_to_the_pool() {
        let store = Arc::new(EpochStore::new());
        store.prewarm(1, 8, 4);
        let buf = store.try_checkout().expect("prewarmed box");
        assert!(store.try_checkout().is_none(), "pool of 1 is drained");
        store.recycle(buf);
        assert!(
            store.try_checkout().is_some(),
            "recycled buffer must be available again"
        );
    }

    #[test]
    fn reader_slots_are_bounded_and_reusable() {
        let store = Arc::new(EpochStore::new());
        let readers: Vec<_> = (0..MAX_READERS).map(|_| store.reader().unwrap()).collect();
        assert!(store.reader().is_none(), "slot table must be bounded");
        drop(readers);
        assert!(store.reader().is_some(), "dropped slots must be reusable");
    }
}
