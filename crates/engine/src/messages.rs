//! Control-port message payloads of the PCA application.

use spca_core::EigenSystem;

/// Control tuple kind: a synchronization command from the controller
/// telling an engine to share its state (§III-B: "the PCA component shares
/// the current eigensystem state with a set of other instances defined in
/// the control message").
pub const KIND_SYNC_COMMAND: u32 = 1;

/// Control tuple kind: an eigensystem arriving from a peer engine.
pub const KIND_PEER_STATE: u32 = 2;

/// Control tuple kind: a monitoring snapshot of an engine's eigensystem.
pub const KIND_SNAPSHOT: u32 = 3;

/// Control tuple kind: a lightweight liveness heartbeat from an engine.
/// The failure-aware sync controller uses these (and snapshots) to decide
/// which engines are alive when generating commands.
pub const KIND_HEARTBEAT: u32 = 4;

/// Payload of a [`KIND_HEARTBEAT`]: which engine is alive and how far
/// along it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Index of the engine sending the heartbeat.
    pub engine: u32,
    /// Observations the sender had folded in when beating.
    pub n_obs: u64,
}

/// Payload of a [`KIND_SYNC_COMMAND`]: which of the engine's peer-state
/// output ports to share on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncCommand {
    /// Peer-port indices the engine should send its eigensystem to.
    pub share_ports: Vec<usize>,
}

/// Payload of a [`KIND_PEER_STATE`] or [`KIND_SNAPSHOT`]: an eigensystem
/// with provenance.
#[derive(Debug, Clone)]
pub struct PeerState {
    /// Index of the engine that produced the state.
    pub engine: u32,
    /// The shared eigensystem (truncated to `p + q` tracked components).
    pub eigensystem: EigenSystem,
    /// Observations the sender had folded in when sharing.
    pub n_obs: u64,
    /// State messages this engine has sent so far (diagnostics).
    pub shares_sent: u64,
    /// Peer states this engine has merged so far (diagnostics).
    pub merges_applied: u64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn payloads_round_trip_through_control_tuples() {
        let cmd = SyncCommand {
            share_ports: vec![0, 2],
        };
        let t = spca_streams::ControlTuple::new(KIND_SYNC_COMMAND, 7, Arc::new(cmd.clone()));
        assert_eq!(t.payload_as::<SyncCommand>().unwrap(), &cmd);

        let st = PeerState {
            engine: 3,
            eigensystem: EigenSystem::zeros(4, 2),
            n_obs: 10,
            shares_sent: 1,
            merges_applied: 2,
        };
        let t2 = spca_streams::ControlTuple::new(KIND_PEER_STATE, 3, Arc::new(st));
        let back = t2.payload_as::<PeerState>().unwrap();
        assert_eq!(back.engine, 3);
        assert_eq!(back.eigensystem.dim(), 4);

        let hb = Heartbeat {
            engine: 1,
            n_obs: 42,
        };
        let t3 = spca_streams::ControlTuple::new(KIND_HEARTBEAT, 1, Arc::new(hb));
        assert_eq!(t3.payload_as::<Heartbeat>().unwrap(), &hb);
    }
}
