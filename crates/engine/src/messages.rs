//! Control-port message payloads of the PCA application.

use spca_core::EigenSystem;

/// Control tuple kind: a synchronization command from the controller
/// telling an engine to share its state (§III-B: "the PCA component shares
/// the current eigensystem state with a set of other instances defined in
/// the control message").
pub const KIND_SYNC_COMMAND: u32 = 1;

/// Control tuple kind: an eigensystem arriving from a peer engine.
pub const KIND_PEER_STATE: u32 = 2;

/// Control tuple kind: a monitoring snapshot of an engine's eigensystem.
pub const KIND_SNAPSHOT: u32 = 3;

/// Control tuple kind: a lightweight liveness heartbeat from an engine.
/// The failure-aware sync controller uses these (and snapshots) to decide
/// which engines are alive when generating commands.
pub const KIND_HEARTBEAT: u32 = 4;

/// Payload of a [`KIND_HEARTBEAT`]: which engine is alive and how far
/// along it is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Index of the engine sending the heartbeat.
    pub engine: u32,
    /// Observations the sender had folded in when beating.
    pub n_obs: u64,
}

/// Payload of a [`KIND_SYNC_COMMAND`]: which of the engine's peer-state
/// output ports to share on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyncCommand {
    /// Peer-port indices the engine should send its eigensystem to.
    pub share_ports: Vec<usize>,
}

/// Payload of a [`KIND_PEER_STATE`] or [`KIND_SNAPSHOT`]: an eigensystem
/// with provenance.
#[derive(Debug, Clone)]
pub struct PeerState {
    /// Index of the engine that produced the state.
    pub engine: u32,
    /// The shared eigensystem (truncated to `p + q` tracked components).
    pub eigensystem: EigenSystem,
    /// Observations the sender had folded in when sharing.
    pub n_obs: u64,
    /// State messages this engine has sent so far (diagnostics).
    pub shares_sent: u64,
    /// Peer states this engine has merged so far (diagnostics).
    pub merges_applied: u64,
}

/// Registers the byte codecs that let the application's control payloads
/// cross a process boundary (see `spca_streams::codec`). Idempotent; every
/// distributed entry point calls this before starting its engine.
///
/// The [`PeerState`] encoding reuses [`crate::persist::encode_snapshot`]
/// for the eigensystem, whose `{:e}` float formatting round-trips every
/// f64 bit-exactly — the property the distributed bit-identity gate rests
/// on.
pub fn register_wire_codecs() {
    use crate::persist::{decode_snapshot, encode_snapshot};
    use std::any::Any;
    use std::sync::Arc;

    spca_streams::register_control_codec(
        KIND_HEARTBEAT,
        |payload, out| {
            let Some(hb) = payload.downcast_ref::<Heartbeat>() else {
                return false;
            };
            out.extend_from_slice(format!("{} {}\n", hb.engine, hb.n_obs).as_bytes());
            true
        },
        |bytes| {
            let text = std::str::from_utf8(bytes).ok()?;
            let mut it = text.trim_end().split(' ');
            let engine = it.next()?.parse().ok()?;
            let n_obs = it.next()?.parse().ok()?;
            if it.next().is_some() {
                return None;
            }
            Some(Arc::new(Heartbeat { engine, n_obs }) as Arc<dyn Any + Send + Sync>)
        },
    );

    spca_streams::register_control_codec(
        KIND_SYNC_COMMAND,
        |payload, out| {
            let Some(cmd) = payload.downcast_ref::<SyncCommand>() else {
                return false;
            };
            let ports: Vec<String> = cmd.share_ports.iter().map(|p| p.to_string()).collect();
            out.extend_from_slice(format!("{}\n", ports.join(" ")).as_bytes());
            true
        },
        |bytes| {
            let text = std::str::from_utf8(bytes).ok()?;
            let share_ports = text
                .trim_end()
                .split(' ')
                .filter(|s| !s.is_empty())
                .map(|s| s.parse().ok())
                .collect::<Option<Vec<usize>>>()?;
            Some(Arc::new(SyncCommand { share_ports }) as Arc<dyn Any + Send + Sync>)
        },
    );

    fn enc_peer_state(payload: &(dyn Any + Send + Sync), out: &mut Vec<u8>) -> bool {
        let Some(st) = payload.downcast_ref::<PeerState>() else {
            return false;
        };
        out.extend_from_slice(
            format!(
                "{} {} {} {}\n",
                st.engine, st.n_obs, st.shares_sent, st.merges_applied
            )
            .as_bytes(),
        );
        out.extend_from_slice(&encode_snapshot(&st.eigensystem));
        true
    }
    fn dec_peer_state(bytes: &[u8]) -> Option<Arc<dyn Any + Send + Sync>> {
        let nl = bytes.iter().position(|&b| b == b'\n')?;
        let head = std::str::from_utf8(&bytes[..nl]).ok()?;
        let mut it = head.split(' ');
        let engine = it.next()?.parse().ok()?;
        let n_obs = it.next()?.parse().ok()?;
        let shares_sent = it.next()?.parse().ok()?;
        let merges_applied = it.next()?.parse().ok()?;
        if it.next().is_some() {
            return None;
        }
        let eigensystem = decode_snapshot(&bytes[nl + 1..]).ok()?;
        Some(Arc::new(PeerState {
            engine,
            eigensystem,
            n_obs,
            shares_sent,
            merges_applied,
        }) as Arc<dyn Any + Send + Sync>)
    }
    // Peer shares and monitoring snapshots carry the same payload type.
    spca_streams::register_control_codec(KIND_PEER_STATE, enc_peer_state, dec_peer_state);
    spca_streams::register_control_codec(KIND_SNAPSHOT, enc_peer_state, dec_peer_state);
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn payloads_round_trip_through_control_tuples() {
        let cmd = SyncCommand {
            share_ports: vec![0, 2],
        };
        let t = spca_streams::ControlTuple::new(KIND_SYNC_COMMAND, 7, Arc::new(cmd.clone()));
        assert_eq!(t.payload_as::<SyncCommand>().unwrap(), &cmd);

        let st = PeerState {
            engine: 3,
            eigensystem: EigenSystem::zeros(4, 2),
            n_obs: 10,
            shares_sent: 1,
            merges_applied: 2,
        };
        let t2 = spca_streams::ControlTuple::new(KIND_PEER_STATE, 3, Arc::new(st));
        let back = t2.payload_as::<PeerState>().unwrap();
        assert_eq!(back.engine, 3);
        assert_eq!(back.eigensystem.dim(), 4);

        let hb = Heartbeat {
            engine: 1,
            n_obs: 42,
        };
        let t3 = spca_streams::ControlTuple::new(KIND_HEARTBEAT, 1, Arc::new(hb));
        assert_eq!(t3.payload_as::<Heartbeat>().unwrap(), &hb);
    }

    #[test]
    fn wire_codecs_round_trip_payloads_bit_exactly() {
        use spca_streams::{decode_frame, encode_frame, ColumnarFrame, Tuple};

        register_wire_codecs();

        let mut eig = spca_core::EigenSystem::zeros(3, 2);
        eig.basis.col_mut(0)[0] = 1.0;
        eig.basis.col_mut(1)[1] = 1.0;
        eig.values[0] = 1.0 / 3.0;
        eig.values[1] = f64::MIN_POSITIVE;
        eig.sigma2 = 0.1 + 0.2; // not representable exactly; must survive
        eig.n_obs = 17;
        let st = PeerState {
            engine: 2,
            eigensystem: eig,
            n_obs: 17,
            shares_sent: 4,
            merges_applied: 9,
        };
        let tuples = vec![
            Tuple::Control(spca_streams::ControlTuple::new(
                KIND_PEER_STATE,
                2,
                Arc::new(st.clone()),
            )),
            Tuple::Control(spca_streams::ControlTuple::new(
                KIND_SYNC_COMMAND,
                0,
                Arc::new(SyncCommand {
                    share_ports: vec![1, 3],
                }),
            )),
            Tuple::Control(spca_streams::ControlTuple::new(
                KIND_HEARTBEAT,
                1,
                Arc::new(Heartbeat {
                    engine: 1,
                    n_obs: 5,
                }),
            )),
        ];

        let mut bytes = Vec::new();
        encode_frame(&tuples, &mut bytes).unwrap();
        let mut cols = ColumnarFrame::default();
        decode_frame(&bytes, &mut cols).unwrap();
        let mut back = Vec::new();
        cols.materialize(&mut back).unwrap();
        assert_eq!(back.len(), 3);

        let Tuple::Control(c0) = &back[0] else {
            panic!("expected control tuple");
        };
        let got = c0.payload_as::<PeerState>().unwrap();
        assert_eq!(got.engine, st.engine);
        assert_eq!(got.shares_sent, st.shares_sent);
        assert_eq!(got.merges_applied, st.merges_applied);
        assert_eq!(
            got.eigensystem.sigma2.to_bits(),
            st.eigensystem.sigma2.to_bits()
        );
        assert_eq!(
            got.eigensystem.values[1].to_bits(),
            st.eigensystem.values[1].to_bits()
        );

        let Tuple::Control(c1) = &back[1] else {
            panic!("expected control tuple");
        };
        assert_eq!(
            c1.payload_as::<SyncCommand>().unwrap().share_ports,
            vec![1, 3]
        );
        let Tuple::Control(c2) = &back[2] else {
            panic!("expected control tuple");
        };
        assert_eq!(
            c2.payload_as::<Heartbeat>().unwrap(),
            &Heartbeat {
                engine: 1,
                n_obs: 5
            }
        );
    }
}
