//! Parallel partitioned backfill of a historical spectrum corpus.
//!
//! The streaming application answers "what is the eigensystem *now*";
//! backfill answers "what was it over the whole archive" — without paying
//! for a monolithic sequential replay every time the question is asked.
//! Because the robust estimator's state is algebraically mergeable
//! (paper eq. 15–16), a corpus can be sharded by a partition key, each
//! shard estimated independently in parallel, and the per-shard
//! eigensystems combined by the core crate's tree reduction. Each shard's
//! finished state persists in a [`StateStore`] keyed by partition id and
//! content hash, so a re-run over an unchanged corpus computes nothing,
//! and appending one shard (yesterday's observations, a new plate) costs
//! exactly one shard — O(partition), never O(history).
//!
//! The division of labor with `spca_streams::backfill`: that module owns
//! the engine-agnostic machinery (partitions, store, worker pool); this
//! one wires it to spectra CSV corpora and the robust PCA estimator, and
//! merges the results into a single [`EigenSystem`] that can seed a live
//! streaming run via `AppConfig::warm_start`.
//!
//! Determinism: partition states are serialized with the exact-round-trip
//! snapshot codec ([`crate::persist::encode_snapshot`]), the merge always
//! consumes the *decoded store bytes* (even on a cold run), and the tree
//! reduction pairs partitions in a fixed order — so a warm run is
//! bit-identical to the cold run that populated its store, at any worker
//! count.

use crate::persist::{decode_snapshot, encode_snapshot};
use spca_core::{EigenSystem, PcaConfig, RobustPca};
use spca_streams::backfill::{content_hash, run_partitions, BackfillStats, Partition, StateStore};
use std::io;
use std::ops::Range;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A partition payload: a byte range of a shared in-memory corpus.
///
/// Partitions of one corpus share the backing buffer through an [`Arc`],
/// so an n-way split costs one file read, not n.
#[derive(Debug, Clone)]
pub struct CorpusSlice {
    bytes: Arc<Vec<u8>>,
    range: Range<usize>,
}

impl CorpusSlice {
    /// The partition's raw bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes[self.range.clone()]
    }

    /// The partition's bytes as CSV text.
    pub fn as_str(&self) -> io::Result<&str> {
        std::str::from_utf8(self.bytes())
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "corpus slice is not UTF-8"))
    }
}

/// Splits a CSV corpus into `parts` contiguous row-range partitions.
///
/// Boundaries land on line starts, and rows are counted over *data* lines
/// (blank and `#`-comment lines ride along with the preceding range), so
/// the partition ids — `rows-<first>-<last+1>` — are stable row
/// coordinates: re-partitioning an unchanged file yields identical ids
/// and content hashes, which is what makes the state store's cache hits
/// line up across runs.
pub fn partition_csv_rows(path: &Path, parts: usize) -> io::Result<Vec<Partition<CorpusSlice>>> {
    assert!(parts >= 1, "need at least one partition");
    let bytes = Arc::new(std::fs::read(path)?);
    let text = std::str::from_utf8(&bytes).map_err(|_| {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: corpus is not UTF-8", path.display()),
        )
    })?;

    // Byte offset and row index of every data line.
    let mut row_starts: Vec<usize> = Vec::new();
    let mut offset = 0;
    for line in text.split_inclusive('\n') {
        let t = line.trim();
        if !t.is_empty() && !t.starts_with('#') {
            row_starts.push(offset);
        }
        offset += line.len();
    }
    let n_rows = row_starts.len();
    if n_rows == 0 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: corpus has no data rows", path.display()),
        ));
    }
    let parts = parts.min(n_rows);

    let mut out = Vec::with_capacity(parts);
    for p in 0..parts {
        // Near-equal split: partition p covers rows [p*n/parts, (p+1)*n/parts).
        let first = p * n_rows / parts;
        let last = (p + 1) * n_rows / parts;
        let lo = row_starts[first];
        let hi = if last < n_rows {
            row_starts[last]
        } else {
            bytes.len()
        };
        let slice = CorpusSlice {
            bytes: Arc::clone(&bytes),
            range: lo..hi,
        };
        out.push(Partition {
            id: format!("rows-{first:06}-{last:06}"),
            content_hash: content_hash(slice.bytes()),
            payload: slice,
        });
    }
    Ok(out)
}

/// One partition per corpus file — the "by plate" / "by day" partition key
/// when the archive is already laid out as one file per observation batch.
/// The partition id is the file name.
pub fn partition_csv_files(paths: &[PathBuf]) -> io::Result<Vec<Partition<CorpusSlice>>> {
    let mut out = Vec::with_capacity(paths.len());
    for path in paths {
        let bytes = Arc::new(std::fs::read(path)?);
        let range = 0..bytes.len();
        let slice = CorpusSlice { bytes, range };
        let id = path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| path.display().to_string());
        out.push(Partition {
            id,
            content_hash: content_hash(slice.bytes()),
            payload: slice,
        });
    }
    Ok(out)
}

/// A reusable per-worker estimator: one [`RobustPca`] whose workspaces are
/// allocated once and reused across every partition the worker drains
/// ([`RobustPca::reset`] clears state but keeps the scratch buffers), plus
/// reusable row-parse buffers — so the steady-state feed loop performs no
/// heap allocation (guarded by `tests/backfill_alloc.rs`).
pub struct PartitionWorker {
    pca: RobustPca,
    values: Vec<f64>,
    mask: Vec<bool>,
}

impl PartitionWorker {
    /// Builds a worker for `cfg`-shaped estimation.
    pub fn new(cfg: PcaConfig) -> Self {
        let dim = cfg.dim;
        PartitionWorker {
            pca: RobustPca::new(cfg),
            values: Vec::with_capacity(dim),
            mask: Vec::with_capacity(dim),
        }
    }

    /// Resets estimator state for the next partition (workspaces survive).
    pub fn begin(&mut self) {
        self.pca.reset();
    }

    /// Feeds one CSV line; blank and comment lines are skipped. Missing
    /// bins (`nan` / unparsable fields) go through the masked update.
    pub fn feed_line(&mut self, line: &str) -> io::Result<()> {
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return Ok(());
        }
        self.values.clear();
        self.mask.clear();
        let mut all_observed = true;
        for field in trimmed.split(',') {
            match field.trim().parse::<f64>() {
                Ok(v) if v.is_finite() => {
                    self.values.push(v);
                    self.mask.push(true);
                }
                _ => {
                    self.values.push(0.0);
                    self.mask.push(false);
                    all_observed = false;
                }
            }
        }
        let result = if all_observed {
            self.pca.update(&self.values)
        } else {
            self.pca.update_masked(&self.values, &self.mask)
        };
        result
            .map(|_| ())
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Runs one whole partition: reset, feed every row, return the full
    /// (`p+q`-component) eigensystem — full so the merged result can later
    /// be installed into a live operator, which needs every tracked
    /// component.
    pub fn process(&mut self, text: &str) -> io::Result<EigenSystem> {
        self.begin();
        for line in text.lines() {
            self.feed_line(line)?;
        }
        self.pca.full_eigensystem().cloned().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "partition too small: estimator needs {} warm-up rows to initialize",
                    self.pca.config().init_size
                ),
            )
        })
    }
}

/// Configuration of a backfill run.
#[derive(Debug, Clone)]
pub struct BackfillConfig {
    /// Estimator configuration applied to every partition.
    pub pca: PcaConfig,
    /// Worker threads (`0` = one per available core).
    pub workers: usize,
    /// State-store directory.
    pub state_dir: PathBuf,
}

/// The result of a backfill run.
#[derive(Debug)]
pub struct BackfillOutcome {
    /// The tree-merged corpus-wide eigensystem.
    pub merged: EigenSystem,
    /// Per-partition eigensystems (input order), decoded from the store.
    pub per_partition: Vec<EigenSystem>,
    /// Cache-hit / compute accounting from the worker pool.
    pub stats: BackfillStats,
}

/// Runs the backfill: every partition's eigensystem comes either from the
/// state store (unchanged input) or from a fresh parallel estimate, and
/// the per-partition states tree-merge into one corpus-wide eigensystem.
///
/// The merge input is *always* the decoded store bytes — on a cold run
/// each worker's eigensystem round-trips through the snapshot codec before
/// merging. The codec is exact, so this costs nothing numerically, and it
/// makes cold and warm runs consume byte-identical inputs: the merged
/// result is bit-reproducible across cold/warm and across worker counts.
pub fn backfill(
    cfg: &BackfillConfig,
    partitions: &[Partition<CorpusSlice>],
) -> io::Result<BackfillOutcome> {
    if partitions.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "backfill needs at least one partition",
        ));
    }
    let store = StateStore::open(&cfg.state_dir)?;
    let pca_cfg = &cfg.pca;
    let (states, stats) = run_partitions(partitions, &store, cfg.workers, |_w| {
        let mut worker = PartitionWorker::new(pca_cfg.clone());
        move |p: &Partition<CorpusSlice>| -> io::Result<Vec<u8>> {
            let eig = worker.process(p.payload.as_str()?)?;
            Ok(encode_snapshot(&eig))
        }
    })?;
    let per_partition: Vec<EigenSystem> = states
        .iter()
        .map(|bytes| decode_snapshot(bytes))
        .collect::<io::Result<_>>()?;
    let merged = spca_core::merge::merge_tree_threads(
        &per_partition,
        if cfg.workers == 0 { 1 } else { cfg.workers }.max(1),
    )
    .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("merge failed: {e}")))?;
    Ok(BackfillOutcome {
        merged,
        per_partition,
        stats,
    })
}
