#![warn(missing_docs)]
//! The parallel streaming-PCA application (paper Fig. 2).
//!
//! Wires the pieces into the paper's analysis graph:
//!
//! ```text
//!                    ┌──────────────► StreamingPca 0 ──► monitor
//!  source ──► split ─┼──────────────► StreamingPca 1 ──► monitor
//!                    └──────────────► StreamingPca n ──► monitor
//!        sync controller ─► throttle ─► (control ports)
//!        StreamingPca i ──(state)──► StreamingPca j   (ring/broadcast/…)
//! ```
//!
//! * [`pca_operator::StreamingPcaOp`] — the stateful operator holding the
//!   robust incremental eigensystem (the paper's custom C++ operator).
//! * [`sync`] — the synchronization controller and its strategies
//!   (circular/ring as in Fig. 3, broadcast, groups), the throttle pacing,
//!   and the `1.5·N` independence gate.
//! * [`app`] — the application builder assembling the full graph with
//!   fusion/placement options.
//! * [`results`] — the in-flight results hub: latest per-engine
//!   eigensystems, merged global estimates, outlier feed.

pub mod app;
pub mod autoscale;
pub mod backfill;
pub mod distributed;
pub mod epoch;
pub mod messages;
pub mod pca_operator;
pub mod persist;
pub mod results;
pub mod serve;
pub mod sync;

pub use app::{normalize_fault_targets, AppConfig, AppHandles, ParallelPcaApp};
pub use autoscale::{ElasticRuntime, ElasticSupervisor, ScaleError, ScaleEvent};
pub use backfill::{
    backfill, partition_csv_files, partition_csv_rows, BackfillConfig, BackfillOutcome,
    CorpusSlice, PartitionWorker,
};
pub use distributed::{
    run_coordinator, run_local, run_worker, stub_source, CoordinatorReport, DistSpec,
};
pub use epoch::{EigenSnapshot, EpochReader, EpochStore, PinnedSnapshot};
pub use messages::{
    register_wire_codecs, Heartbeat, PeerState, SyncCommand, KIND_HEARTBEAT, KIND_PEER_STATE,
    KIND_SNAPSHOT, KIND_SYNC_COMMAND,
};
pub use pca_operator::StreamingPcaOp;
pub use persist::{read_snapshot, recovery_path, write_snapshot, SnapshotWriter};
pub use results::ResultsHub;
pub use serve::{endpoint_index, EigenQueryHandler, FaultCounters, ServeShared};
pub use sync::{SyncController, SyncStrategy};
