//! The stateful streaming-PCA operator (§III-A's custom C++ operator).
//!
//! "The stateful Streaming PCA operator stores the eigenvalues and
//! eigenvectors (the eigensystem) as well as other state variables as
//! class members. Upon receiving a new input tuple, its internal states
//! are continuously updated by computationally inexpensive algebraic
//! operations."
//!
//! Port layout (configured by the application builder):
//!
//! * output ports `0 .. n_peer_ports` — peer-state ports: on a sync
//!   command the operator sends its eigensystem out of the commanded
//!   subset of these.
//! * output port `n_peer_ports` — monitor port: periodic eigensystem
//!   snapshots (the paper's "intermediate calculation results are
//!   periodically saved to the disk") plus the final state on finish.
//! * output port `n_peer_ports + 1` — outcome port (optional feed of
//!   per-tuple `[seq, r², t, w, outlier]` rows, the in-flight results /
//!   outlier flags the introduction motivates).
//! * output port `n_peer_ports + 2` — quarantine port (optional): flagged
//!   observations are forwarded *verbatim* for downstream processing —
//!   "often the goal is to flag outliers for further processing" (§II-C);
//!   rejected tuples carry zero weight in the eigensystem but are never
//!   dropped from the quarantine feed.
//!
//! The operator state is guarded by a `parking_lot::Mutex` exactly as the
//! paper guards its operator with an InfoSphere mutex — the engine never
//! calls one operator concurrently, but the lock documents and enforces
//! the invariant cheaply, and lets diagnostics peek at live state.

use crate::messages::{
    Heartbeat, PeerState, SyncCommand, KIND_HEARTBEAT, KIND_PEER_STATE, KIND_SNAPSHOT,
    KIND_SYNC_COMMAND,
};
use crate::persist;
use parking_lot::Mutex;
use spca_core::{merge, PcaConfig, RobustPca};
use spca_streams::checkpoint::{decode_kv, encode_kv, kv_u64, Checkpoint};
use spca_streams::{ControlTuple, DataTuple, OpContext, Operator};
use std::path::PathBuf;
use std::sync::Arc;

/// The streaming PCA operator.
pub struct StreamingPcaOp {
    /// Engine index within the application (used in message provenance).
    pub engine_id: u32,
    state: Arc<Mutex<RobustPca>>,
    n_peer_ports: usize,
    snapshot_every: u64,
    emit_outcomes: bool,
    emit_quarantine: bool,
    /// Observations processed since the last synchronization share or
    /// merge — the paper's independence gate counter.
    obs_since_sync: u64,
    /// Gate threshold: share only when `obs_since_sync > 1.5 · N`.
    sync_gate: u64,
    /// Optional data-driven gate: share only when the subspace distance to
    /// the most recently received peer state exceeds this (None = always).
    divergence_gate: Option<f64>,
    /// Basis of the last peer state received, for the divergence check.
    last_peer: Option<spca_core::EigenSystem>,
    processed: u64,
    outliers_flagged: u64,
    dropped: u64,
    /// Non-finite observations rejected at the operator boundary. NaN/Inf
    /// payloads would otherwise contaminate the running sums irreversibly
    /// (a single NaN poisons every covariance estimate it touches), so
    /// they carry zero weight in the eigensystem and only feed the
    /// quarantine port.
    quarantined: u64,
    merges_applied: u64,
    shares_sent: u64,
    /// When set, the operator synchronously writes its eigensystem to
    /// `recovery_path(dir, engine_id)` every `recovery_every` processed
    /// tuples; [`Operator::recover`] rehydrates from that file after a
    /// supervised restart.
    recovery_dir: Option<PathBuf>,
    recovery_every: u64,
    /// When nonzero, a [`KIND_HEARTBEAT`] goes out on the monitor port at
    /// the first processed tuple and every `heartbeat_every` thereafter,
    /// feeding the failure-aware sync controller's liveness tracker.
    heartbeat_every: u64,
    /// Serving-layer publication target: when set, the operator publishes
    /// an immutable snapshot of its eigensystem into the epoch store
    /// every `publish_every` processed tuples, after every merge, and at
    /// finish. The copy reuses recycled snapshot buffers, so steady-state
    /// publishing keeps the update path allocation-free.
    epoch_store: Option<Arc<crate::epoch::EpochStore>>,
    publish_every: u64,
    /// True once the first post-warm-up snapshot has been published, so
    /// serving opens as soon as the estimator initializes instead of at
    /// the next cadence boundary.
    published_once: bool,
}

impl StreamingPcaOp {
    /// Creates an engine with the given PCA configuration and `n_peer_ports`
    /// state outputs. The sync gate follows the paper: `1.5 · N` where
    /// `N = 1/(1−α)` (falls back to `u64::MAX` for α = 1, i.e. never
    /// independent, so never gated *open*... which would disable sync; for
    /// α = 1 the gate is instead pinned to `1.5 · init_size`).
    pub fn new(engine_id: u32, cfg: PcaConfig, n_peer_ports: usize) -> Self {
        // `ceil`, not truncation: the gate is compared with strict `>`, so
        // a truncated `(1.5 * mem) as u64` would let an engine share one
        // observation before `obs_since_sync > 1.5·N` actually holds
        // whenever 1.5·N is fractional (e.g. N = 3 → gate 4, shared at 5
        // observations instead of the required ⌈4.5⌉ = 5 → shared at 6).
        let mem = cfg.effective_memory();
        let sync_gate = if mem.is_finite() {
            (1.5 * mem).ceil() as u64
        } else {
            (1.5 * cfg.init_size as f64).ceil() as u64
        };
        StreamingPcaOp {
            engine_id,
            state: Arc::new(Mutex::new(RobustPca::new(cfg))),
            n_peer_ports,
            snapshot_every: 0,
            emit_outcomes: false,
            emit_quarantine: false,
            obs_since_sync: 0,
            sync_gate,
            divergence_gate: None,
            last_peer: None,
            processed: 0,
            outliers_flagged: 0,
            dropped: 0,
            quarantined: 0,
            merges_applied: 0,
            shares_sent: 0,
            recovery_dir: None,
            recovery_every: 0,
            heartbeat_every: 0,
            epoch_store: None,
            publish_every: 0,
            published_once: false,
        }
    }

    /// Emits an eigensystem snapshot on the monitor port every `n` tuples
    /// (0 = only the final snapshot).
    pub fn with_snapshots_every(mut self, n: u64) -> Self {
        self.snapshot_every = n;
        self
    }

    /// Enables crash recovery: every `every` processed tuples the operator
    /// *synchronously* writes its eigensystem to
    /// [`persist::recovery_path`]`(dir, engine_id)` (atomic
    /// rename, see [`persist::write_snapshot`]), and a supervised restart
    /// rehydrates from that file. Synchronous matters: the asynchronous
    /// [`persist::SnapshotWriter`] on the monitor stream may lag the
    /// operator at the moment of a crash, but this file is always exactly
    /// as fresh as the last multiple of `every`.
    pub fn with_recovery(mut self, dir: impl Into<PathBuf>, every: u64) -> Self {
        assert!(every > 0, "recovery cadence must be positive");
        self.recovery_dir = Some(dir.into());
        self.recovery_every = every;
        self
    }

    /// Emits a liveness heartbeat on the monitor port at the first
    /// processed tuple and every `n` thereafter.
    pub fn with_heartbeats_every(mut self, n: u64) -> Self {
        self.heartbeat_every = n;
        self
    }

    /// Enables the per-tuple outcome feed on the outcome port.
    pub fn with_outcomes(mut self) -> Self {
        self.emit_outcomes = true;
        self
    }

    /// Enables the quarantine feed: observations flagged as outliers are
    /// forwarded verbatim on the quarantine port.
    pub fn with_quarantine(mut self) -> Self {
        self.emit_quarantine = true;
        self
    }

    /// Overrides the sync gate (tests / ablations).
    pub fn with_sync_gate(mut self, gate: u64) -> Self {
        self.sync_gate = gate;
        self
    }

    /// Enables the data-driven synchronization check (§I's "data-driven
    /// synchronization", §II-C's "the nodes verify every time that the
    /// eigensystems are statistically independent"): on a sync command,
    /// the engine shares only if its basis has drifted more than
    /// `threshold` (subspace distance) from the last peer state it saw.
    /// Engines that have never heard from a peer always share.
    pub fn with_divergence_gate(mut self, threshold: f64) -> Self {
        assert!((0.0..=1.0).contains(&threshold));
        self.divergence_gate = Some(threshold);
        self
    }

    /// Publishes epoch-numbered eigensystem snapshots into `store` every
    /// `every` processed tuples (plus after every merge and at finish),
    /// making the live eigensystem queryable by the serving layer. A
    /// cadence of 0 publishes only on initialization, merges, and finish.
    /// Prewarms the store's snapshot pool here (build time, off the
    /// update thread) so steady-state publishing never allocates and
    /// pool exhaustion sheds a publish instead of allocating.
    pub fn with_epoch_store(mut self, store: Arc<crate::epoch::EpochStore>, every: u64) -> Self {
        let (d, k) = {
            let st = self.state.lock();
            let c = st.config();
            (c.dim, c.p_total())
        };
        store.prewarm(crate::epoch::PREWARM_PER_WRITER, d, k);
        self.epoch_store = Some(store);
        self.publish_every = every;
        self
    }

    /// Copies the current eigensystem into a recycled snapshot buffer and
    /// publishes it — allocation-free unconditionally: the pool is
    /// prewarmed, and if stalled readers have drained it the publish is
    /// shed (readers keep the previous epoch) rather than allocating on
    /// the update thread. The state lock covers only the copy; the
    /// pointer swap happens after release, so readers and the publish
    /// itself never touch the update hot path.
    fn publish_epoch(&mut self) {
        let Some(store) = &self.epoch_store else {
            return;
        };
        let Some(mut buf) = store.try_checkout() else {
            return; // pool drained by stalled readers: shed this publish
        };
        let filled = {
            let st = self.state.lock();
            match st.full_eigensystem() {
                Some(eig) => {
                    buf.eig.copy_from(eig);
                    buf.p = st.config().p;
                    true
                }
                None => false, // warm-up: nothing to serve yet
            }
        };
        if filled {
            store.publish(buf);
            self.published_once = true;
        } else {
            store.recycle(buf);
        }
    }

    /// Warm-starts the engine from a previously persisted eigensystem:
    /// the warm-up phase is skipped and streaming resumes from the given
    /// state. Fails if the state's shape does not match the configuration.
    pub fn with_initial_state(self, eig: spca_core::EigenSystem) -> spca_core::Result<Self> {
        self.state.lock().install_eigensystem(eig)?;
        Ok(self)
    }

    /// Shared handle to the live PCA state (diagnostics).
    pub fn state_handle(&self) -> Arc<Mutex<RobustPca>> {
        Arc::clone(&self.state)
    }

    fn monitor_port(&self) -> usize {
        self.n_peer_ports
    }

    fn outcome_port(&self) -> usize {
        self.n_peer_ports + 1
    }

    fn quarantine_port(&self) -> usize {
        self.n_peer_ports + 2
    }

    fn snapshot(&self, ctx: &mut OpContext<'_>) {
        // The lock covers only the state read: clone the eigensystem (and
        // observation count) under it, then assemble the message and send
        // with the lock released, so a slow or blocking downstream port can
        // never stall the per-tuple update path of a concurrent reader.
        let (eigensystem, n_obs) = {
            let st = self.state.lock();
            match st.full_eigensystem() {
                Some(eig) => (eig.clone(), st.n_obs()),
                None => return,
            }
        };
        let msg = PeerState {
            engine: self.engine_id,
            eigensystem,
            n_obs,
            shares_sent: self.shares_sent,
            merges_applied: self.merges_applied,
        };
        ctx.emit_control(
            self.monitor_port(),
            ControlTuple::new(KIND_SNAPSHOT, self.engine_id, Arc::new(msg)),
        );
    }

    fn heartbeat(&self, ctx: &mut OpContext<'_>) {
        let msg = Heartbeat {
            engine: self.engine_id,
            n_obs: self.processed,
        };
        ctx.emit_control(
            self.monitor_port(),
            ControlTuple::new(KIND_HEARTBEAT, self.engine_id, Arc::new(msg)),
        );
    }

    /// Writes the recovery snapshot. Same lock discipline as [`snapshot`]:
    /// clone the eigensystem under the lock, touch the filesystem after
    /// release.
    fn write_recovery(&self) {
        let Some(dir) = &self.recovery_dir else {
            return;
        };
        let eig = {
            let st = self.state.lock();
            match st.full_eigensystem() {
                Some(eig) => eig.clone(),
                None => return, // still warming up: nothing worth persisting
            }
        };
        if let Err(e) = std::fs::create_dir_all(dir) {
            eprintln!(
                "engine {}: cannot create recovery dir {}: {e}",
                self.engine_id,
                dir.display()
            );
            return;
        }
        let path = persist::recovery_path(dir, self.engine_id);
        if let Err(e) = persist::write_snapshot(&path, &eig) {
            eprintln!(
                "engine {}: recovery snapshot failed for {}: {e}",
                self.engine_id,
                path.display()
            );
        }
    }
}

impl Operator for StreamingPcaOp {
    fn process(&mut self, tuple: DataTuple, ctx: &mut OpContext<'_>) {
        // Dead-letter boundary: a NaN or Inf would poison the running sums
        // irreversibly, so non-finite observations never reach the state —
        // they are counted, optionally forwarded on the quarantine port,
        // and contribute zero weight to the eigensystem.
        if !tuple.all_finite() {
            self.quarantined += 1;
            ctx.add_quarantined();
            if self.quarantined <= 5 || self.quarantined.is_multiple_of(1000) {
                eprintln!(
                    "engine {}: quarantined non-finite tuple {} ({} so far)",
                    self.engine_id, tuple.seq, self.quarantined
                );
            }
            if self.emit_quarantine {
                ctx.emit_data(self.quarantine_port(), tuple);
            }
            return;
        }
        let outcome = {
            let mut st = self.state.lock();
            match tuple.mask.as_deref() {
                Some(mask) => st.update_masked(&tuple.values, mask),
                None => st.update(&tuple.values),
            }
        };
        let outcome = match outcome {
            Ok(o) => o,
            Err(e) => {
                // Malformed observations are data-quality events, not engine
                // failures: count and continue, like any production stream
                // processor. Log the first few and then once per thousand,
                // so a persistently dirty feed cannot flood stderr.
                self.dropped += 1;
                if self.dropped <= 5 || self.dropped.is_multiple_of(1000) {
                    eprintln!(
                        "engine {}: dropped tuple {} ({} dropped so far): {e}",
                        self.engine_id, tuple.seq, self.dropped
                    );
                }
                return;
            }
        };
        self.processed += 1;
        self.obs_since_sync += 1;
        if outcome.outlier {
            self.outliers_flagged += 1;
        }
        if self.emit_outcomes && outcome.initialized {
            let row = vec![
                tuple.seq as f64,
                outcome.residual_sq,
                outcome.scaled_residual,
                outcome.weight,
                if outcome.outlier { 1.0 } else { 0.0 },
            ];
            ctx.emit_data(self.outcome_port(), DataTuple::new(tuple.seq, row));
        }
        if self.emit_quarantine && outcome.outlier {
            // Forward the flagged observation itself (values are shared via
            // Arc, so this is pointer-cheap).
            ctx.emit_data(self.quarantine_port(), tuple.clone());
        }
        if self.epoch_store.is_some()
            && outcome.initialized
            && (!self.published_once
                || (self.publish_every > 0 && self.processed.is_multiple_of(self.publish_every)))
        {
            self.publish_epoch();
        }
        if self.snapshot_every > 0 && self.processed.is_multiple_of(self.snapshot_every) {
            self.snapshot(ctx);
        }
        if self.recovery_every > 0 && self.processed.is_multiple_of(self.recovery_every) {
            self.write_recovery();
        }
        if self.heartbeat_every > 0
            && (self.processed == 1 || self.processed.is_multiple_of(self.heartbeat_every))
        {
            self.heartbeat(ctx);
        }
    }

    fn on_control(&mut self, tuple: ControlTuple, ctx: &mut OpContext<'_>) {
        match tuple.kind {
            KIND_SYNC_COMMAND => {
                // Independence gate (§II-C): share only when enough new
                // observations have accumulated since the last exchange.
                // Counted as a sync skip: after a supervised restart the
                // gate holds the engine out of the exchange protocol until
                // it has re-earned statistical independence, and the skip
                // count is how the run report makes that visible.
                if self.obs_since_sync <= self.sync_gate {
                    ctx.add_sync_skip();
                    return;
                }
                let Some(cmd) = tuple.payload_as::<SyncCommand>() else {
                    return;
                };
                // Lock scope: the divergence check and the eigensystem
                // clone only. Message assembly and the port sends happen
                // after release (sends can block on backpressure; holding
                // the state lock there would couple downstream congestion
                // to the update hot path).
                let (eigensystem, n_obs) = {
                    let st = self.state.lock();
                    let Some(own) = st.full_eigensystem() else {
                        return;
                    };
                    // Data-driven gate: skip the exchange when this engine's
                    // estimate still agrees with what its peers last
                    // reported — nothing informative to send.
                    if let (Some(threshold), Some(peer)) = (self.divergence_gate, &self.last_peer) {
                        match spca_core::metrics::subspace_distance(&own.basis, &peer.basis) {
                            Ok(d) if d <= threshold => return,
                            _ => {}
                        }
                    }
                    (own.clone(), st.n_obs())
                };
                let payload: Arc<PeerState> = Arc::new(PeerState {
                    engine: self.engine_id,
                    eigensystem,
                    n_obs,
                    shares_sent: self.shares_sent,
                    merges_applied: self.merges_applied,
                });
                for &port in &cmd.share_ports {
                    if port < self.n_peer_ports {
                        ctx.emit_control(
                            port,
                            ControlTuple::new(
                                KIND_PEER_STATE,
                                self.engine_id,
                                Arc::clone(&payload) as Arc<_>,
                            ),
                        );
                        self.shares_sent += 1;
                    }
                }
                self.obs_since_sync = 0;
            }
            KIND_PEER_STATE => {
                let Some(peer) = tuple.payload_as::<PeerState>() else {
                    return;
                };
                self.last_peer = Some(peer.eigensystem.clone());
                let mut st = self.state.lock();
                let merged = match st.full_eigensystem() {
                    Some(own) => merge(own, &peer.eigensystem),
                    // Not initialized yet: adopt the peer's state outright.
                    None => Ok(peer.eigensystem.clone()),
                };
                let merged_ok = match merged.and_then(|m| st.install_eigensystem(m)) {
                    Ok(()) => {
                        self.merges_applied += 1;
                        // A merge resets the independence clock too.
                        self.obs_since_sync = 0;
                        true
                    }
                    Err(e) => {
                        eprintln!(
                            "engine {}: rejected peer state from {}: {e}",
                            self.engine_id, peer.engine
                        );
                        false
                    }
                };
                drop(st);
                // A merge changes the served estimate discontinuously, so
                // the serving layer gets the new state immediately.
                if merged_ok {
                    self.publish_epoch();
                }
            }
            _ => {}
        }
    }

    fn on_finish(&mut self, ctx: &mut OpContext<'_>) {
        self.snapshot(ctx);
        self.publish_epoch();
    }

    /// Supervised-restart hook: rehydrate from the latest recovery
    /// snapshot. Without a recovery directory the operator declines the
    /// restart (returns `false`) and the supervisor finishes it — losing
    /// state silently would be worse than dying visibly. With a directory
    /// but no snapshot yet (crash before the first cadence tick), restart
    /// fresh from the configuration.
    fn recover(&mut self, attempt: u64) -> bool {
        let Some(dir) = self.recovery_dir.clone() else {
            return false;
        };
        let path = persist::recovery_path(&dir, self.engine_id);
        let cfg = self.state.lock().config().clone();
        let mut fresh = RobustPca::new(cfg);
        let restored_obs = match persist::read_snapshot(&path) {
            Ok(eig) => {
                let n = eig.n_obs;
                if let Err(e) = fresh.install_eigensystem(eig) {
                    eprintln!(
                        "engine {}: recovery snapshot {} does not fit the \
                         configuration: {e}",
                        self.engine_id,
                        path.display()
                    );
                    return false;
                }
                n
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => 0,
            Err(e) => {
                eprintln!(
                    "engine {}: cannot read recovery snapshot {}: {e}",
                    self.engine_id,
                    path.display()
                );
                return false;
            }
        };
        *self.state.lock() = fresh;
        self.processed = restored_obs;
        // The restart re-enters the exchange protocol from scratch: the
        // independence gate must pass again before the engine shares, and
        // any remembered peer state predates the crash.
        self.obs_since_sync = 0;
        self.last_peer = None;
        eprintln!(
            "engine {}: restart #{attempt} rehydrated {} observations from {}",
            self.engine_id,
            restored_obs,
            path.display()
        );
        true
    }

    fn checkpoint(&mut self) -> Option<&mut dyn Checkpoint> {
        Some(self)
    }
}

/// Marker line separating the counter header from the embedded eigensystem
/// (absent while the operator is still warming up).
const EIG_MARKER: &[u8] = b"eigensystem\n";

/// Universal-checkpoint facet: the counters as a key-value header, followed
/// by the eigensystem in the same self-describing text format as the
/// on-disk snapshots ([`persist::encode_snapshot`]), so a PE-manifest blob
/// is inspectable with a text editor exactly like a standalone snapshot.
/// `last_peer` is deliberately not captured: like a supervised restart, a
/// restored engine forgets pre-crash peer gossip and re-earns it.
impl Checkpoint for StreamingPcaOp {
    fn snapshot(&self) -> Vec<u8> {
        let mut out = encode_kv(&[
            ("processed", self.processed.to_string()),
            ("obs_since_sync", self.obs_since_sync.to_string()),
            ("outliers_flagged", self.outliers_flagged.to_string()),
            ("dropped", self.dropped.to_string()),
            ("quarantined", self.quarantined.to_string()),
            ("merges_applied", self.merges_applied.to_string()),
            ("shares_sent", self.shares_sent.to_string()),
        ]);
        let eig = {
            let st = self.state.lock();
            st.full_eigensystem().cloned()
        };
        if let Some(eig) = eig {
            out.extend_from_slice(EIG_MARKER);
            out.extend_from_slice(&persist::encode_snapshot(&eig));
        }
        out
    }

    fn restore(&mut self, bytes: &[u8]) -> std::io::Result<()> {
        let bad = |m: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, m.to_string());
        // Split at the marker line: kv header before, eigensystem after.
        let (head, eig_bytes) = if bytes.starts_with(EIG_MARKER) {
            (&bytes[..0], Some(&bytes[EIG_MARKER.len()..]))
        } else {
            let pat = b"\neigensystem\n";
            match bytes.windows(pat.len()).position(|w| w == pat) {
                Some(pos) => (&bytes[..pos + 1], Some(&bytes[pos + pat.len()..])),
                None => (bytes, None),
            }
        };
        let kv = decode_kv(head)?;
        let cfg = self.state.lock().config().clone();
        let mut fresh = RobustPca::new(cfg);
        if let Some(eig_bytes) = eig_bytes {
            let eig = persist::decode_snapshot(eig_bytes)?;
            fresh
                .install_eigensystem(eig)
                .map_err(|e| bad(&format!("checkpoint does not fit the configuration: {e}")))?;
        }
        self.processed = kv_u64(&kv, "processed")?;
        self.obs_since_sync = kv_u64(&kv, "obs_since_sync")?;
        self.outliers_flagged = kv_u64(&kv, "outliers_flagged")?;
        self.dropped = kv_u64(&kv, "dropped")?;
        self.quarantined = kv_u64(&kv, "quarantined")?;
        self.merges_applied = kv_u64(&kv, "merges_applied")?;
        self.shares_sent = kv_u64(&kv, "shares_sent")?;
        self.last_peer = None;
        *self.state.lock() = fresh;
        Ok(())
    }

    fn checkpoint_every(&self) -> u64 {
        if self.recovery_every > 0 {
            self.recovery_every
        } else {
            spca_streams::DEFAULT_CHECKPOINT_EVERY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_spectra::PlantedSubspace;
    use spca_streams::operator::testing::{with_ctx, with_sink, CaptureSink};
    use spca_streams::Tuple;

    const D: usize = 16;

    fn cfg() -> PcaConfig {
        PcaConfig::new(D, 2)
            .with_memory(200)
            .with_init_size(20)
            .with_extra(0)
    }

    fn feed(op: &mut StreamingPcaOp, n: usize, seed: u64) -> u64 {
        let w = PlantedSubspace::new(D, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(seed);
        with_ctx(op.n_peer_ports + 2, |ctx| {
            for seq in 0..n {
                op.process(DataTuple::new(seq as u64, w.sample(&mut rng)), ctx);
            }
        });
        op.processed
    }

    #[test]
    fn operator_learns_subspace() {
        let mut op = StreamingPcaOp::new(0, cfg(), 1);
        feed(&mut op, 1000, 1);
        let st = op.state_handle();
        let guard = st.lock();
        assert!(guard.is_initialized());
        let eig = guard.eigensystem();
        let dist = spca_core::metrics::subspace_distance(
            &eig.basis,
            PlantedSubspace::new(D, 2, 0.05).basis(),
        )
        .unwrap();
        assert!(dist < 0.2, "distance {dist}");
    }

    #[test]
    fn sync_command_gated_until_enough_observations() {
        let mut op = StreamingPcaOp::new(0, cfg(), 1); // gate = 1.5·200 = 300
        feed(&mut op, 100, 2);
        let sink = with_ctx(3, |ctx| {
            op.on_control(
                ControlTuple::new(
                    KIND_SYNC_COMMAND,
                    99,
                    Arc::new(SyncCommand {
                        share_ports: vec![0],
                    }),
                ),
                ctx,
            );
        });
        assert!(
            sink.ports[0].is_empty(),
            "gate should have blocked the share"
        );
        assert_eq!(op.shares_sent, 0);
    }

    #[test]
    fn sync_gate_boundary_rounds_up_never_down() {
        // `with_memory(N)` stores α = 1 − 1/N; recovering N = 1/(1−α) in
        // floats can land a hair *below* the integer (e.g. 4999.999…), so a
        // truncating cast would yield gate 1.5·N − 1 and the strict `>`
        // comparison would admit a share one observation early. `ceil`
        // pins the gate at ≥ 1.5·N for every memory value.
        for mem in [3usize, 7, 200, 5000, 9999] {
            let c = PcaConfig::new(D, 2).with_memory(mem).with_init_size(20);
            let op = StreamingPcaOp::new(0, c, 1);
            let exact = 1.5 * mem as f64;
            assert!(
                (op.sync_gate as f64) >= exact - 1e-6,
                "memory {mem}: gate {} fell below 1.5·N = {exact}",
                op.sync_gate
            );
            assert!(
                (op.sync_gate as f64) <= exact + 1.0,
                "memory {mem}: gate {} overshot 1.5·N = {exact} by > 1",
                op.sync_gate
            );
        }
        // Fractional boundary pinned exactly: N = 3 → 1.5·N = 4.5 → gate 5.
        let op = StreamingPcaOp::new(0, PcaConfig::new(D, 2).with_memory(3), 1);
        assert_eq!(op.sync_gate, 5, "⌈4.5⌉ = 5, truncation would give 4");
        // Exact-integer boundary unchanged: N = 200 → gate 300, and a share
        // at obs_since_sync = 300 is still blocked (strict `>`).
        let mut op = StreamingPcaOp::new(0, cfg(), 1);
        assert_eq!(op.sync_gate, 300);
        feed(&mut op, 300, 21);
        op.obs_since_sync = 300;
        let sink = with_ctx(3, |ctx| {
            op.on_control(
                ControlTuple::new(
                    KIND_SYNC_COMMAND,
                    99,
                    Arc::new(SyncCommand {
                        share_ports: vec![0],
                    }),
                ),
                ctx,
            );
        });
        assert!(sink.ports[0].is_empty(), "obs == gate must stay gated");
        assert_eq!(op.shares_sent, 0);
    }

    #[test]
    fn sync_command_shares_after_gate_passes() {
        let mut op = StreamingPcaOp::new(0, cfg(), 2);
        feed(&mut op, 400, 3); // beyond the 300 gate
        let sink = with_ctx(4, |ctx| {
            op.on_control(
                ControlTuple::new(
                    KIND_SYNC_COMMAND,
                    99,
                    Arc::new(SyncCommand {
                        share_ports: vec![1],
                    }),
                ),
                ctx,
            );
        });
        assert!(sink.ports[0].is_empty());
        assert_eq!(sink.ports[1].len(), 1);
        match &sink.ports[1][0] {
            Tuple::Control(c) => {
                assert_eq!(c.kind, KIND_PEER_STATE);
                let st = c.payload_as::<PeerState>().unwrap();
                assert_eq!(st.engine, 0);
                assert_eq!(st.eigensystem.dim(), D);
            }
            other => panic!("expected control tuple, got {other:?}"),
        }
        assert_eq!(op.obs_since_sync, 0, "share resets the gate clock");
    }

    #[test]
    fn peer_state_merges_into_local() {
        let mut a = StreamingPcaOp::new(0, cfg(), 1);
        let mut b = StreamingPcaOp::new(1, cfg(), 1);
        feed(&mut a, 500, 4);
        feed(&mut b, 500, 5);
        let sb = b.state_handle();
        let peer = PeerState {
            engine: 1,
            eigensystem: sb.lock().full_eigensystem().unwrap().clone(),
            n_obs: 500,
            shares_sent: 0,
            merges_applied: 0,
        };
        let n_before = a.state_handle().lock().full_eigensystem().unwrap().n_obs;
        with_ctx(3, |ctx| {
            a.on_control(ControlTuple::new(KIND_PEER_STATE, 1, Arc::new(peer)), ctx);
        });
        assert_eq!(a.merges_applied, 1);
        let after = a.state_handle().lock().full_eigensystem().unwrap().clone();
        assert_eq!(after.n_obs, n_before + 500, "merge sums observation counts");
        after.check_invariants().unwrap();
    }

    #[test]
    fn outcome_feed_reports_outliers() {
        let mut op = StreamingPcaOp::new(0, cfg(), 0).with_outcomes();
        let w = PlantedSubspace::new(D, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(6);
        let sink = with_ctx(2, |ctx| {
            for seq in 0..300u64 {
                op.process(DataTuple::new(seq, w.sample(&mut rng)), ctx);
            }
            // A gross outlier.
            let mut spike = vec![0.0; D];
            spike[7] = 500.0;
            op.process(DataTuple::new(300, spike), ctx);
        });
        let outcomes = sink.data_at(1);
        assert!(!outcomes.is_empty());
        let last = outcomes.last().unwrap();
        assert_eq!(last.seq, 300);
        assert_eq!(
            last.values[4], 1.0,
            "outlier flag expected: {:?}",
            last.values
        );
        assert!(op.outliers_flagged >= 1);
    }

    #[test]
    fn final_snapshot_on_finish() {
        let mut op = StreamingPcaOp::new(2, cfg(), 0);
        feed(&mut op, 100, 7);
        let sink = with_ctx(2, |ctx| op.on_finish(ctx));
        assert_eq!(sink.ports[0].len(), 1);
        match &sink.ports[0][0] {
            Tuple::Control(c) => assert_eq!(c.kind, KIND_SNAPSHOT),
            other => panic!("expected snapshot, got {other:?}"),
        }
    }

    #[test]
    fn divergence_gate_suppresses_redundant_shares() {
        // Engine whose state matches its peer's must not share; an engine
        // that drifted must.
        let mut a = StreamingPcaOp::new(0, cfg(), 1).with_divergence_gate(0.2);
        feed(&mut a, 800, 30); // past the 1.5N gate of 300
                               // Tell it about a peer that has the SAME state (itself).
        let own = a.state_handle().lock().full_eigensystem().unwrap().clone();
        let same_peer = PeerState {
            engine: 1,
            eigensystem: own,
            n_obs: 800,
            shares_sent: 0,
            merges_applied: 0,
        };
        with_ctx(3, |ctx| {
            a.on_control(
                ControlTuple::new(KIND_PEER_STATE, 1, Arc::new(same_peer)),
                ctx,
            );
        });
        // Accumulate past the obs gate again (the merge reset it).
        feed(&mut a, 400, 31);
        let sink = with_ctx(3, |ctx| {
            a.on_control(
                ControlTuple::new(
                    KIND_SYNC_COMMAND,
                    99,
                    Arc::new(SyncCommand {
                        share_ports: vec![0],
                    }),
                ),
                ctx,
            );
        });
        assert!(
            sink.ports[0].is_empty(),
            "share should be suppressed when agreeing with the peer"
        );

        // Now hand it a peer living on a different subspace: divergence
        // check must open the gate. (Merging rotates our state toward the
        // peer, so inject the peer as `last_peer` via a fresh op and feed
        // it data from a different plane.)
        let mut b = StreamingPcaOp::new(2, cfg(), 1).with_divergence_gate(0.2);
        feed(&mut b, 800, 32);
        let mut off_basis = spca_core::EigenSystem::zeros(D, 2);
        off_basis.basis[(D - 1, 0)] = 1.0;
        off_basis.basis[(D - 2, 1)] = 1.0;
        off_basis.values = vec![1.0, 0.5];
        off_basis.sum_v = 1e-9; // negligible weight: merge barely moves us
        let far_peer = PeerState {
            engine: 3,
            eigensystem: off_basis,
            n_obs: 1,
            shares_sent: 0,
            merges_applied: 0,
        };
        with_ctx(3, |ctx| {
            b.on_control(
                ControlTuple::new(KIND_PEER_STATE, 3, Arc::new(far_peer)),
                ctx,
            );
        });
        feed(&mut b, 400, 33);
        let sink = with_ctx(3, |ctx| {
            b.on_control(
                ControlTuple::new(
                    KIND_SYNC_COMMAND,
                    99,
                    Arc::new(SyncCommand {
                        share_ports: vec![0],
                    }),
                ),
                ctx,
            );
        });
        assert_eq!(sink.ports[0].len(), 1, "divergent engine must share");
    }

    #[test]
    fn state_lock_never_held_across_port_sends() {
        // Port sends can block on downstream backpressure; the operator
        // must have released its state mutex by then or a congested output
        // would stall every reader of the live state. The capture sink's
        // emit hook checks the mutex at the exact moment of each send,
        // across all emitting paths: outcome feed, quarantine feed,
        // periodic snapshot, sync-command share, and the final snapshot.
        let mut op = StreamingPcaOp::new(0, cfg(), 1)
            .with_outcomes()
            .with_quarantine()
            .with_snapshots_every(50)
            .with_sync_gate(0);
        let handle = op.state_handle();
        let mut sink = CaptureSink::new(op.n_peer_ports + 3);
        let watched = Arc::clone(&handle);
        sink.on_emit = Some(Box::new(move |port, _| {
            assert!(
                !watched.is_locked(),
                "state mutex held during send on port {port}"
            );
        }));
        let w = PlantedSubspace::new(D, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(8);
        with_sink(&mut sink, |ctx| {
            for seq in 0..400u64 {
                op.process(DataTuple::new(seq, w.sample(&mut rng)), ctx);
            }
            // A gross outlier to force the quarantine path.
            let mut spike = vec![0.0; D];
            spike[3] = 500.0;
            op.process(DataTuple::new(400, spike), ctx);
            op.on_control(
                ControlTuple::new(
                    KIND_SYNC_COMMAND,
                    99,
                    Arc::new(SyncCommand {
                        share_ports: vec![0],
                    }),
                ),
                ctx,
            );
            op.on_finish(ctx);
        });
        // Every path must actually have emitted, or the hook proved nothing.
        assert!(!sink.ports[0].is_empty(), "peer share expected");
        assert!(
            sink.ports[1].len() >= 2,
            "periodic + final snapshots expected"
        );
        assert!(!sink.ports[2].is_empty(), "outcome feed expected");
        assert!(!sink.ports[3].is_empty(), "quarantine feed expected");
    }

    #[test]
    fn malformed_tuple_dropped_not_fatal() {
        let mut op = StreamingPcaOp::new(0, cfg(), 0);
        with_ctx(2, |ctx| {
            op.process(DataTuple::new(0, vec![1.0; 3]), ctx); // wrong dim
        });
        assert_eq!(op.processed, 0);
    }

    fn assert_eig_bits_equal(a: &spca_core::EigenSystem, b: &spca_core::EigenSystem) {
        assert_eq!(a.n_obs, b.n_obs);
        assert_eq!(a.sigma2.to_bits(), b.sigma2.to_bits());
        assert_eq!(a.sum_u.to_bits(), b.sum_u.to_bits());
        assert_eq!(a.sum_v.to_bits(), b.sum_v.to_bits());
        assert_eq!(a.sum_q.to_bits(), b.sum_q.to_bits());
        for (x, y) in a.values.iter().zip(&b.values) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        for (x, y) in a.mean.iter().zip(&b.mean) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert_eq!(a.basis.sub(&b.basis).unwrap().max_abs(), 0.0);
    }

    #[test]
    fn nan_tuples_quarantined_and_eigensystem_bit_identical() {
        // The regression the dead-letter boundary exists for: a stream
        // with NaN/Inf tuples interleaved must yield the *bit-identical*
        // eigensystem of the clean stream — zero weight, not "almost no"
        // weight.
        use spca_streams::metrics::OpCounters;
        use spca_streams::operator::testing::with_sink_counters;

        let w = PlantedSubspace::new(D, 2, 0.05);
        let mut clean = StreamingPcaOp::new(0, cfg(), 0);
        let mut dirty = StreamingPcaOp::new(0, cfg(), 0);

        let mut rng = StdRng::seed_from_u64(11);
        let samples: Vec<Vec<f64>> = (0..600).map(|_| w.sample(&mut rng)).collect();

        with_ctx(2, |ctx| {
            for (seq, s) in samples.iter().enumerate() {
                clean.process(DataTuple::new(seq as u64, s.clone()), ctx);
            }
        });

        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(2);
        with_sink_counters(&mut sink, &counters, |ctx| {
            for (seq, s) in samples.iter().enumerate() {
                dirty.process(DataTuple::new(seq as u64, s.clone()), ctx);
                if seq % 100 == 7 {
                    let mut bad = vec![0.0; D];
                    bad[seq % D] = if seq % 200 == 7 {
                        f64::NAN
                    } else {
                        f64::INFINITY
                    };
                    dirty.process(DataTuple::new(10_000 + seq as u64, bad), ctx);
                }
            }
        });

        assert_eq!(dirty.quarantined, 6);
        assert_eq!(counters.snapshot().quarantined, 6);
        assert_eq!(dirty.processed, clean.processed);
        let a = clean.state_handle();
        let b = dirty.state_handle();
        let (ga, gb) = (a.lock(), b.lock());
        assert_eig_bits_equal(
            ga.full_eigensystem().unwrap(),
            gb.full_eigensystem().unwrap(),
        );
    }

    #[test]
    fn quarantine_port_receives_nonfinite_tuples_verbatim() {
        let mut op = StreamingPcaOp::new(0, cfg(), 0).with_quarantine();
        let sink = with_ctx(3, |ctx| {
            op.process(DataTuple::new(4, vec![f64::NAN; D]), ctx);
        });
        let q = sink.data_at(2);
        assert_eq!(q.len(), 1);
        assert_eq!(q[0].seq, 4);
        assert!(q[0].values[0].is_nan(), "tuple forwarded verbatim");
        assert_eq!(op.processed, 0, "quarantined tuple carries no weight");
    }

    #[test]
    fn gated_sync_command_counts_a_skip() {
        use spca_streams::metrics::OpCounters;
        use spca_streams::operator::testing::with_sink_counters;
        let mut op = StreamingPcaOp::new(0, cfg(), 1); // gate = 300
        feed(&mut op, 100, 12);
        let counters = OpCounters::default();
        let mut sink = CaptureSink::new(3);
        with_sink_counters(&mut sink, &counters, |ctx| {
            op.on_control(
                ControlTuple::new(
                    KIND_SYNC_COMMAND,
                    99,
                    Arc::new(SyncCommand {
                        share_ports: vec![0],
                    }),
                ),
                ctx,
            );
        });
        assert!(sink.ports[0].is_empty());
        assert_eq!(counters.snapshot().sync_skips, 1);
    }

    #[test]
    fn heartbeats_on_monitor_port() {
        let mut op = StreamingPcaOp::new(3, cfg(), 0).with_heartbeats_every(50);
        let w = PlantedSubspace::new(D, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(13);
        let sink = with_ctx(2, |ctx| {
            for seq in 0..120u64 {
                op.process(DataTuple::new(seq, w.sample(&mut rng)), ctx);
            }
        });
        // Beats at processed 1, 50 and 100.
        let beats: Vec<_> = sink.ports[0]
            .iter()
            .filter_map(|t| match t {
                Tuple::Control(c) if c.kind == KIND_HEARTBEAT => {
                    Some(*c.payload_as::<Heartbeat>().unwrap())
                }
                _ => None,
            })
            .collect();
        assert_eq!(
            beats,
            vec![
                Heartbeat {
                    engine: 3,
                    n_obs: 1
                },
                Heartbeat {
                    engine: 3,
                    n_obs: 50
                },
                Heartbeat {
                    engine: 3,
                    n_obs: 100
                },
            ]
        );
    }

    fn recovery_tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("spca_pcaop_{}_{name}", std::process::id()));
        p
    }

    #[test]
    fn recover_rehydrates_bit_exactly_from_snapshot() {
        let dir = recovery_tmp("recover");
        std::fs::remove_dir_all(&dir).ok();
        let mut op = StreamingPcaOp::new(5, cfg(), 0).with_recovery(&dir, 100);
        feed(&mut op, 300, 14); // recovery snapshots at 100, 200, 300
        let before = op.state_handle().lock().full_eigensystem().unwrap().clone();

        // A replacement operator that made some divergent progress the
        // crash wiped out: recover() must discard it and restore the
        // snapshot state exactly.
        let mut crashed = StreamingPcaOp::new(5, cfg(), 0).with_recovery(&dir, 100);
        feed(&mut crashed, 37, 15);
        crashed.obs_since_sync = 37;
        assert!(crashed.recover(1));
        assert_eq!(crashed.processed, 300);
        assert_eq!(crashed.obs_since_sync, 0);
        assert!(crashed.last_peer.is_none());
        let after = crashed
            .state_handle()
            .lock()
            .full_eigensystem()
            .unwrap()
            .clone();
        assert_eig_bits_equal(&before, &after);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recover_without_snapshot_restarts_fresh() {
        let dir = recovery_tmp("fresh");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        let mut op = StreamingPcaOp::new(6, cfg(), 0).with_recovery(&dir, 100);
        feed(&mut op, 80, 16); // crash before the first cadence tick
        assert!(op.recover(1), "missing snapshot means a fresh restart");
        assert_eq!(op.processed, 0);
        assert!(!op.state_handle().lock().is_initialized());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn universal_checkpoint_round_trips_state_and_counters_bit_exactly() {
        let mut op = StreamingPcaOp::new(4, cfg(), 1);
        feed(&mut op, 500, 18);
        op.obs_since_sync = 123;
        op.shares_sent = 2;
        let before = op.state_handle().lock().full_eigensystem().unwrap().clone();
        let bytes = Checkpoint::snapshot(&op);

        let mut fresh = StreamingPcaOp::new(4, cfg(), 1);
        fresh.restore(&bytes).unwrap();
        assert_eq!(fresh.processed, 500);
        assert_eq!(fresh.obs_since_sync, 123);
        assert_eq!(fresh.shares_sent, 2);
        assert!(fresh.last_peer.is_none());
        let after = fresh
            .state_handle()
            .lock()
            .full_eigensystem()
            .unwrap()
            .clone();
        assert_eig_bits_equal(&before, &after);
    }

    #[test]
    fn warmup_checkpoint_carries_counters_but_no_eigensystem() {
        let mut op = StreamingPcaOp::new(4, cfg(), 0);
        feed(&mut op, 5, 19); // still inside the init-20 warm-up
        let bytes = Checkpoint::snapshot(&op);
        let mut fresh = StreamingPcaOp::new(4, cfg(), 0);
        fresh.restore(&bytes).unwrap();
        assert_eq!(fresh.processed, 5);
        assert!(!fresh.state_handle().lock().is_initialized());
    }

    #[test]
    fn checkpoint_cadence_follows_recovery_cadence() {
        let dir = recovery_tmp("cadence");
        let op = StreamingPcaOp::new(8, cfg(), 0).with_recovery(&dir, 250);
        assert_eq!(op.checkpoint_every(), 250);
        let plain = StreamingPcaOp::new(8, cfg(), 0);
        assert_eq!(
            plain.checkpoint_every(),
            spca_streams::DEFAULT_CHECKPOINT_EVERY
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn recover_without_recovery_dir_declines() {
        let mut op = StreamingPcaOp::new(7, cfg(), 0);
        feed(&mut op, 50, 17);
        assert!(!op.recover(1), "no recovery dir: decline and be finished");
    }
}
