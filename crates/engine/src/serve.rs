//! The eigensystem query handler — the engine side of the serving layer.
//!
//! [`EigenQueryHandler`] plugs into the dependency-free HTTP server in
//! `spca-streams` ([`spca_streams::ops::http_server`]) and answers
//! queries against the epoch store the PCA operators publish into:
//!
//! | endpoint                  | method | body             | response |
//! |---------------------------|--------|------------------|----------|
//! | `/project`                | POST   | CSV observation  | CSV projection coefficients |
//! | `/reconstruct`            | POST   | CSV observation  | CSV reconstructed observation |
//! | `/score`                  | POST   | CSV observation  | CSV `residual_sq,scaled_residual` |
//! | `/topk?k=K`               | POST   | CSV observation  | CSV `component,coefficient,cosine` lines |
//! | `/healthz`                | GET    | —                | `ok <epoch>` |
//! | `/metrics`                | GET    | —                | operational counters + latency quantiles |
//!
//! Query responses carry an `X-Epoch` header naming the snapshot epoch
//! they were computed against, so clients (and the stress tests) can
//! verify bit-identical results offline. Before the first publish
//! (estimator warm-up) query endpoints answer `503`.
//!
//! Each worker thread gets its own handler instance owning a
//! [`QueryWorkspace`], a parse buffer, and a registered [`EpochReader`],
//! so a request in steady state allocates nothing: parse into a reused
//! buffer, pin the epoch (lock-free), compute into the workspace, format
//! into the server's reused response buffer.

use crate::epoch::{EpochReader, EpochStore};
use spca_core::QueryWorkspace;
use spca_streams::metrics::LatencyHistogram;
use spca_streams::ops::http_server::{ConnHandler, Request, ResponseBuf, ServerStats};
use spca_streams::RunReport;
use std::io::Write as _;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// The fault counters the CLI fault summary prints; `/metrics` exposes
/// the same values so the two can be asserted identical.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FaultCounters {
    /// Supervised operator restarts.
    pub restarts: u64,
    /// Whole-PE restarts.
    pub pe_restarts: u64,
    /// Quarantined (non-finite) tuples.
    pub quarantined: u64,
    /// Synchronization rounds skipped by the independence gate.
    pub sync_skips: u64,
    /// Storage faults absorbed by the persistence layer (ENOSPC, fsync
    /// failures, torn or bit-rotted files found at recovery).
    pub io_faults: u64,
    /// Checkpoint blobs/manifests moved aside as `*.corrupt-N` during
    /// PE recovery.
    pub quarantined_snapshots: u64,
    /// Periodic checkpoints skipped because the write failed (the PE
    /// keeps running and backs off its checkpoint window).
    pub checkpoint_skips: u64,
    /// Engines admitted by the elastic autoscaler (scale-out events).
    pub scale_outs: u64,
    /// Engines retired by the elastic autoscaler (scale-in events).
    pub scale_ins: u64,
}

impl FaultCounters {
    /// Extracts the counters from a finished run's report — by
    /// construction the same totals the CLI fault summary prints.
    pub fn from_report(report: &RunReport) -> Self {
        FaultCounters {
            restarts: report.total_restarts(),
            pe_restarts: report.total_pe_restarts(),
            quarantined: report.total_quarantined(),
            sync_skips: report.total_sync_skips(),
            io_faults: report.total_io_faults(),
            quarantined_snapshots: report.total_quarantined_snapshots(),
            checkpoint_skips: report.total_checkpoint_skips(),
            scale_outs: report.total_scale_outs(),
            scale_ins: report.total_scale_ins(),
        }
    }

    /// Sums the counters over live operator snapshots
    /// (`RunningEngine::op_snapshots`).
    pub fn from_op_snapshots(snaps: &[(String, spca_streams::metrics::OpSnapshot)]) -> Self {
        let mut c = FaultCounters::default();
        for (_, s) in snaps {
            c.restarts += s.restarts;
            c.pe_restarts += s.pe_restarts;
            c.quarantined += s.quarantined;
            c.sync_skips += s.sync_skips;
            c.io_faults += s.io_faults;
            c.quarantined_snapshots += s.quarantined_snapshots;
            c.checkpoint_skips += s.checkpoint_skips;
            c.scale_outs += s.scale_outs;
            c.scale_ins += s.scale_ins;
        }
        c
    }
}

/// Endpoint indices into the histogram table.
const EP_PROJECT: usize = 0;
const EP_RECONSTRUCT: usize = 1;
const EP_SCORE: usize = 2;
const EP_TOPK: usize = 3;
const EP_HEALTHZ: usize = 4;
const EP_METRICS: usize = 5;
const ENDPOINT_NAMES: [&str; 6] = [
    "project",
    "reconstruct",
    "score",
    "topk",
    "healthz",
    "metrics",
];

/// Index of an endpoint name in the [`ServeShared::histogram`] table
/// (e.g. `"project"`, `"score"`). `None` for unknown names.
pub fn endpoint_index(name: &str) -> Option<usize> {
    ENDPOINT_NAMES.iter().position(|n| *n == name)
}

/// State shared by every serving thread: the snapshot store, the fault
/// counters mirrored from the engine, per-endpoint latency histograms,
/// and (once the server is up) its admission-control stats.
pub struct ServeShared {
    store: Arc<EpochStore>,
    counters: Mutex<FaultCounters>,
    hist: [LatencyHistogram; 6],
    server_stats: OnceLock<Arc<ServerStats>>,
}

impl ServeShared {
    /// Shared serving state over `store`.
    pub fn new(store: Arc<EpochStore>) -> Self {
        ServeShared {
            store,
            counters: Mutex::new(FaultCounters::default()),
            hist: Default::default(),
            server_stats: OnceLock::new(),
        }
    }

    /// The underlying snapshot store.
    pub fn store(&self) -> &Arc<EpochStore> {
        &self.store
    }

    /// Mirrors the engine's fault counters into `/metrics`. Call with
    /// live sums while the run is in flight and with
    /// [`FaultCounters::from_report`] after it finishes.
    pub fn set_counters(&self, c: FaultCounters) {
        *self.counters.lock().unwrap() = c;
    }

    /// Current mirrored fault counters.
    pub fn counters(&self) -> FaultCounters {
        *self.counters.lock().unwrap()
    }

    /// Attaches the HTTP server's stats so `/metrics` can report
    /// shed/rate-limited counts (first call wins).
    pub fn set_server_stats(&self, stats: Arc<ServerStats>) {
        let _ = self.server_stats.set(stats);
    }

    /// Per-endpoint latency histogram (by [`ENDPOINT_NAMES`] index).
    pub fn histogram(&self, endpoint: usize) -> &LatencyHistogram {
        &self.hist[endpoint]
    }
}

/// Per-thread query handler. Build one per server worker via
/// [`EigenQueryHandler::new`] in the server's handler factory.
pub struct EigenQueryHandler {
    shared: Arc<ServeShared>,
    reader: EpochReader,
    ws: QueryWorkspace,
    obs: Vec<f64>,
}

impl EigenQueryHandler {
    /// A handler bound to the shared serving state. Panics if all
    /// [`crate::epoch::MAX_READERS`] reader slots are taken (the server
    /// pool is far smaller in practice).
    pub fn new(shared: Arc<ServeShared>) -> Self {
        let reader = shared
            .store()
            .reader()
            .expect("epoch store reader slots exhausted");
        EigenQueryHandler {
            shared,
            reader,
            ws: QueryWorkspace::new(),
            obs: Vec::new(),
        }
    }

    /// Parses a CSV float vector into the reusable `obs` buffer.
    fn parse_body(body: &[u8], obs: &mut Vec<f64>) -> Result<(), &'static str> {
        let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8")?;
        obs.clear();
        for tok in text.split(&[',', '\n', ' '][..]) {
            let tok = tok.trim_matches('\r');
            if tok.is_empty() {
                continue;
            }
            obs.push(tok.parse().map_err(|_| "bad number in body")?);
        }
        if obs.is_empty() {
            return Err("empty observation");
        }
        Ok(())
    }

    fn write_csv(out: &mut Vec<u8>, values: &[f64]) {
        for (i, v) in values.iter().enumerate() {
            if i > 0 {
                out.push(b',');
            }
            // `{}` on f64 is the shortest round-trip representation, so
            // the textual response is lossless.
            let _ = write!(out, "{v}");
        }
        out.push(b'\n');
    }

    fn metrics_response(&mut self, resp: &mut ResponseBuf) {
        let c = self.shared.counters();
        let b = &mut resp.body;
        let _ = writeln!(b, "spca_epoch {}", self.shared.store().epoch());
        let _ = writeln!(b, "spca_restarts {}", c.restarts);
        let _ = writeln!(b, "spca_pe_restarts {}", c.pe_restarts);
        let _ = writeln!(b, "spca_quarantined {}", c.quarantined);
        let _ = writeln!(b, "spca_sync_skips {}", c.sync_skips);
        let _ = writeln!(b, "spca_io_faults {}", c.io_faults);
        let _ = writeln!(b, "spca_quarantined_snapshots {}", c.quarantined_snapshots);
        let _ = writeln!(b, "spca_checkpoint_skips {}", c.checkpoint_skips);
        let _ = writeln!(b, "spca_scale_outs {}", c.scale_outs);
        let _ = writeln!(b, "spca_scale_ins {}", c.scale_ins);
        if let Some(stats) = self.shared.server_stats.get() {
            let _ = writeln!(
                b,
                "spca_http_accepted {}",
                stats.accepted.load(Ordering::Relaxed)
            );
            let _ = writeln!(
                b,
                "spca_http_served {}",
                stats.served.load(Ordering::Relaxed)
            );
            let _ = writeln!(b, "spca_http_shed {}", stats.shed.load(Ordering::Relaxed));
            let _ = writeln!(
                b,
                "spca_http_rate_limited {}",
                stats.rate_limited.load(Ordering::Relaxed)
            );
        }
        for (i, name) in ENDPOINT_NAMES.iter().enumerate() {
            let h = &self.shared.hist[i];
            let _ = writeln!(
                b,
                "spca_requests_total{{endpoint=\"{name}\"}} {}",
                h.count()
            );
            for (q, label) in [(0.5, "0.5"), (0.99, "0.99"), (0.999, "0.999")] {
                let _ = writeln!(
                    b,
                    "spca_latency_ns{{endpoint=\"{name}\",quantile=\"{label}\"}} {}",
                    h.quantile_ns(q)
                );
            }
        }
    }
}

impl ConnHandler for EigenQueryHandler {
    fn handle(&mut self, req: &Request<'_>, resp: &mut ResponseBuf) {
        let start = Instant::now();
        let endpoint = match (req.method, req.path) {
            ("POST", "/project") => EP_PROJECT,
            ("POST", "/reconstruct") => EP_RECONSTRUCT,
            ("POST", "/score") => EP_SCORE,
            ("POST", "/topk") => EP_TOPK,
            ("GET", "/healthz") => EP_HEALTHZ,
            ("GET", "/metrics") => EP_METRICS,
            ("GET", "/project" | "/reconstruct" | "/score" | "/topk")
            | ("POST", "/healthz" | "/metrics") => {
                resp.set_status(405);
                resp.body.extend_from_slice(b"wrong method\n");
                return;
            }
            _ => {
                resp.set_status(404);
                resp.body.extend_from_slice(b"unknown endpoint\n");
                return;
            }
        };

        match endpoint {
            EP_HEALTHZ => {
                let _ = writeln!(resp.body, "ok {}", self.shared.store().epoch());
            }
            EP_METRICS => self.metrics_response(resp),
            _ => {
                if let Err(msg) = Self::parse_body(req.body, &mut self.obs) {
                    resp.set_status(400);
                    resp.body.extend_from_slice(msg.as_bytes());
                    resp.body.push(b'\n');
                    self.shared.hist[endpoint].record_ns(start.elapsed().as_nanos() as u64);
                    return;
                }
                let Some(snap) = self.reader.pin() else {
                    resp.set_status(503);
                    resp.body
                        .extend_from_slice(b"no eigensystem published yet\n");
                    self.shared.hist[endpoint].record_ns(start.elapsed().as_nanos() as u64);
                    return;
                };
                resp.add_header("X-Epoch", format_args!("{}", snap.epoch));
                let p = snap.p;
                let out = match endpoint {
                    EP_PROJECT => self
                        .ws
                        .project(&snap.eig, p, &self.obs)
                        .map(|c| Self::write_csv(&mut resp.body, c)),
                    EP_RECONSTRUCT => self
                        .ws
                        .reconstruct(&snap.eig, p, &self.obs)
                        .map(|r| Self::write_csv(&mut resp.body, r)),
                    EP_SCORE => self.ws.outlier_score(&snap.eig, p, &self.obs).map(|s| {
                        let _ = write!(resp.body, "{},{}", s.residual_sq, s.scaled_residual);
                        resp.body.push(b'\n');
                    }),
                    EP_TOPK => {
                        let k = req
                            .query_param("k")
                            .and_then(|v| v.parse().ok())
                            .unwrap_or(p);
                        self.ws
                            .top_k_similarity(&snap.eig, p, &self.obs, k)
                            .map(|hits| {
                                for h in hits {
                                    let _ = writeln!(
                                        resp.body,
                                        "{},{},{}",
                                        h.component, h.coefficient, h.cosine
                                    );
                                }
                            })
                    }
                    _ => unreachable!(),
                };
                if let Err(e) = out {
                    resp.body.clear();
                    resp.set_status(400);
                    let _ = writeln!(resp.body, "{e}");
                }
            }
        }
        self.shared.hist[endpoint].record_ns(start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use spca_core::{PcaConfig, RobustPca};
    use spca_streams::ops::http_server::{HttpServer, ServerConfig};
    use std::io::{Read, Write};
    use std::net::TcpStream;

    const D: usize = 12;
    const P: usize = 2;

    fn publish_fitted(store: &Arc<EpochStore>) -> spca_core::EigenSystem {
        let mut pca = RobustPca::new(PcaConfig::new(D, P));
        for i in 0..80u64 {
            let x: Vec<f64> = (0..D)
                .map(|j| ((i as f64) * 0.37 + j as f64).sin() * 2.0)
                .collect();
            pca.update(&x).unwrap();
        }
        let eig = pca.full_eigensystem().unwrap().clone();
        let mut buf = store.checkout();
        buf.eig.copy_from(&eig);
        buf.p = P;
        store.publish(buf);
        eig
    }

    fn start_server(shared: &Arc<ServeShared>) -> HttpServer {
        let server = HttpServer::start("127.0.0.1:0", ServerConfig::default(), |_| {
            EigenQueryHandler::new(Arc::clone(shared))
        })
        .unwrap();
        shared.set_server_stats(server.stats());
        server
    }

    fn request(addr: std::net::SocketAddr, req: String) -> String {
        let mut conn = TcpStream::connect(addr).unwrap();
        conn.write_all(req.as_bytes()).unwrap();
        let mut out = String::new();
        conn.shutdown(std::net::Shutdown::Write).unwrap();
        conn.read_to_string(&mut out).unwrap();
        out
    }

    fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> String {
        request(
            addr,
            format!(
                "POST {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
                body.len()
            ),
        )
    }

    fn get(addr: std::net::SocketAddr, path: &str) -> String {
        request(
            addr,
            format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"),
        )
    }

    fn body_of(resp: &str) -> &str {
        resp.split("\r\n\r\n").nth(1).unwrap_or("")
    }

    #[test]
    fn serves_all_four_query_endpoints() {
        let store = Arc::new(EpochStore::new());
        let eig = publish_fitted(&store);
        let shared = Arc::new(ServeShared::new(Arc::clone(&store)));
        let server = start_server(&shared);
        let addr = server.local_addr();

        let obs: Vec<f64> = (0..D).map(|j| (j as f64 * 0.61).cos()).collect();
        let obs_csv = obs
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join(",");

        // project: bit-identical to the offline workspace computation.
        let resp = post(addr, "/project", &obs_csv);
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        assert!(resp.contains("X-Epoch: 1"), "{resp}");
        let mut ws = QueryWorkspace::new();
        let want: Vec<String> = ws
            .project(&eig, P, &obs)
            .unwrap()
            .iter()
            .map(|v| v.to_string())
            .collect();
        assert_eq!(body_of(&resp).trim(), want.join(","));

        // reconstruct: D values back.
        let resp = post(addr, "/reconstruct", &obs_csv);
        let n_vals = body_of(&resp).trim().split(',').count();
        assert_eq!(n_vals, D, "{resp}");

        // score: r² and t, matching the offline computation exactly.
        let resp = post(addr, "/score", &obs_csv);
        let s = ws.outlier_score(&eig, P, &obs).unwrap();
        assert_eq!(
            body_of(&resp).trim(),
            format!("{},{}", s.residual_sq, s.scaled_residual)
        );

        // topk: k lines of component,coefficient,cosine.
        let resp = post(addr, "/topk?k=2", &obs_csv);
        let lines: Vec<&str> = body_of(&resp).trim().lines().collect();
        assert_eq!(lines.len(), 2, "{resp}");
        assert_eq!(lines[0].split(',').count(), 3);

        // healthz reports the epoch.
        let resp = get(addr, "/healthz");
        assert!(body_of(&resp).starts_with("ok 1"), "{resp}");

        // Unknown endpoint and wrong method.
        assert!(get(addr, "/nope").starts_with("HTTP/1.1 404"));
        assert!(get(addr, "/project").starts_with("HTTP/1.1 405"));
        // Malformed body.
        assert!(post(addr, "/project", "not,numbers").starts_with("HTTP/1.1 400"));

        server.shutdown();
    }

    #[test]
    fn empty_store_answers_503_until_first_publish() {
        let store = Arc::new(EpochStore::new());
        let shared = Arc::new(ServeShared::new(Arc::clone(&store)));
        let server = start_server(&shared);
        let addr = server.local_addr();
        let resp = post(addr, "/project", "1,2,3");
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        publish_fitted(&store);
        let obs_csv = (0..D)
            .map(|_| "0.5".to_string())
            .collect::<Vec<_>>()
            .join(",");
        let resp = post(addr, "/project", &obs_csv);
        assert!(resp.starts_with("HTTP/1.1 200"), "{resp}");
        server.shutdown();
    }

    #[test]
    fn metrics_exposes_fault_counters_and_histograms() {
        let store = Arc::new(EpochStore::new());
        publish_fitted(&store);
        let shared = Arc::new(ServeShared::new(Arc::clone(&store)));
        shared.set_counters(FaultCounters {
            restarts: 3,
            pe_restarts: 1,
            quarantined: 7,
            sync_skips: 42,
            io_faults: 5,
            quarantined_snapshots: 2,
            checkpoint_skips: 9,
            scale_outs: 4,
            scale_ins: 3,
        });
        let server = start_server(&shared);
        let addr = server.local_addr();
        let obs_csv = (0..D)
            .map(|_| "1.0".to_string())
            .collect::<Vec<_>>()
            .join(",");
        post(addr, "/score", &obs_csv);
        let resp = get(addr, "/metrics");
        let body = body_of(&resp);
        assert!(body.contains("spca_epoch 1"), "{body}");
        assert!(body.contains("spca_restarts 3"), "{body}");
        assert!(body.contains("spca_pe_restarts 1"), "{body}");
        assert!(body.contains("spca_quarantined 7"), "{body}");
        assert!(body.contains("spca_sync_skips 42"), "{body}");
        assert!(body.contains("spca_io_faults 5"), "{body}");
        assert!(body.contains("spca_quarantined_snapshots 2"), "{body}");
        assert!(body.contains("spca_checkpoint_skips 9"), "{body}");
        assert!(body.contains("spca_scale_outs 4"), "{body}");
        assert!(body.contains("spca_scale_ins 3"), "{body}");
        assert!(
            body.contains("spca_requests_total{endpoint=\"score\"} 1"),
            "{body}"
        );
        assert!(
            body.contains("spca_latency_ns{endpoint=\"score\",quantile=\"0.999\"}"),
            "{body}"
        );
        server.shutdown();
    }
}
