//! The in-flight results hub.
//!
//! Partial results are the point of streaming ("these early results are
//! invaluable when processing petabytes"): the hub collects each engine's
//! snapshots as they are emitted, exposes the latest per-engine state, and
//! merges them into a global estimate on demand — "the idea is to keep the
//! eigensystems in sync across all nodes, so that the resulting eigensystem
//! can be obtained from any node" (§III-B).

use crate::messages::PeerState;
use parking_lot::Mutex;
use spca_core::{merge, EigenSystem, PcaError};
use std::sync::Arc;

/// Shared collector of per-engine eigensystem snapshots.
#[derive(Clone)]
pub struct ResultsHub {
    inner: Arc<Mutex<Inner>>,
}

struct Inner {
    latest: Vec<Option<PeerState>>,
    snapshots_seen: u64,
}

impl ResultsHub {
    /// A hub for `n_engines` engines.
    pub fn new(n_engines: usize) -> Self {
        ResultsHub {
            inner: Arc::new(Mutex::new(Inner {
                latest: vec![None; n_engines],
                snapshots_seen: 0,
            })),
        }
    }

    /// Records a snapshot (the application wires this to monitor ports).
    pub fn record(&self, state: PeerState) {
        let mut g = self.inner.lock();
        let idx = state.engine as usize;
        if idx < g.latest.len() {
            g.latest[idx] = Some(state);
            g.snapshots_seen += 1;
        }
    }

    /// Latest eigensystem of one engine, if it has reported.
    pub fn engine_state(&self, engine: usize) -> Option<EigenSystem> {
        self.inner
            .lock()
            .latest
            .get(engine)?
            .as_ref()
            .map(|s| s.eigensystem.clone())
    }

    /// Number of engines that have reported at least once.
    pub fn engines_reporting(&self) -> usize {
        self.inner
            .lock()
            .latest
            .iter()
            .filter(|s| s.is_some())
            .count()
    }

    /// Total snapshots recorded.
    pub fn snapshots_seen(&self) -> u64 {
        self.inner.lock().snapshots_seen
    }

    /// Total state shares and merges across reporting engines, from the
    /// latest snapshots — the sync-traffic diagnostics of the ablation
    /// benches.
    pub fn sync_totals(&self) -> (u64, u64) {
        let g = self.inner.lock();
        let mut shares = 0;
        let mut merges = 0;
        for s in g.latest.iter().flatten() {
            shares += s.shares_sent;
            merges += s.merges_applied;
        }
        (shares, merges)
    }

    /// Merges the latest states of all reporting engines into a global
    /// estimate (paper eq. 15–16 applied across the fleet).
    pub fn merged_estimate(&self) -> Result<EigenSystem, PcaError> {
        let g = self.inner.lock();
        let states: Vec<&PeerState> = g.latest.iter().flatten().collect();
        let (first, rest) = states
            .split_first()
            .ok_or_else(|| PcaError::IncompatibleMerge("no engine has reported yet".into()))?;
        let mut acc = first.eigensystem.clone();
        for s in rest {
            acc = merge(&acc, &s.eigensystem)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_core::batch::batch_pca;
    use spca_spectra::PlantedSubspace;

    fn state_of(engine: u32, n: usize, seed: u64) -> PeerState {
        let w = PlantedSubspace::new(8, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(seed);
        let data = w.sample_batch(&mut rng, n);
        PeerState {
            engine,
            eigensystem: batch_pca(&data, 2).unwrap(),
            n_obs: n as u64,
            shares_sent: 0,
            merges_applied: 0,
        }
    }

    #[test]
    fn records_and_reports() {
        let hub = ResultsHub::new(3);
        assert_eq!(hub.engines_reporting(), 0);
        assert!(hub.merged_estimate().is_err());
        hub.record(state_of(1, 100, 1));
        assert_eq!(hub.engines_reporting(), 1);
        assert!(hub.engine_state(1).is_some());
        assert!(hub.engine_state(0).is_none());
    }

    #[test]
    fn later_snapshot_replaces_earlier() {
        let hub = ResultsHub::new(2);
        hub.record(state_of(0, 50, 2));
        hub.record(state_of(0, 200, 3));
        assert_eq!(hub.engine_state(0).unwrap().n_obs, 200);
        assert_eq!(hub.snapshots_seen(), 2);
    }

    #[test]
    fn merged_estimate_combines_engines() {
        let hub = ResultsHub::new(2);
        hub.record(state_of(0, 100, 4));
        hub.record(state_of(1, 100, 5));
        let merged = hub.merged_estimate().unwrap();
        assert_eq!(merged.n_obs, 200);
        let w = PlantedSubspace::new(8, 2, 0.05);
        let d = spca_core::metrics::subspace_distance(&merged.basis, w.basis()).unwrap();
        assert!(d < 0.2, "merged distance {d}");
    }

    #[test]
    fn out_of_range_engine_ignored() {
        let hub = ResultsHub::new(1);
        hub.record(state_of(5, 10, 6));
        assert_eq!(hub.engines_reporting(), 0);
    }
}
