//! Application builder: assembles the paper's Fig. 2 analysis graph.
//!
//! `source → split → n × StreamingPca`, with the synchronization
//! controller wired to every engine's control port (optionally through
//! `Throttle` operators, §III-B), peer-state edges following the chosen
//! [`SyncStrategy`] topology, monitor ports collected into a
//! [`ResultsHub`], and an optional per-tuple outcome feed.
//!
//! Placement mirrors §III-D's two configurations: `fuse = true` puts every
//! operator in one processing element (the "single" rows of Fig. 6 —
//! in-memory tuple hand-off), while `fuse = false` gives each engine its
//! own PE with `Network`-kind links (the "distributed" rows; the modeled
//! per-tuple delay is configurable for laptop-scale demonstrations).

use crate::messages::{PeerState, KIND_SNAPSHOT};
use crate::pca_operator::StreamingPcaOp;
use crate::results::ResultsHub;
use crate::sync::{SyncController, SyncStrategy};
use parking_lot::Mutex;
use spca_core::{PcaConfig, RobustPca};
use spca_streams::ops::{CallbackSink, CollectSink, Split, SplitStrategy, Throttle};
use spca_streams::{
    ActiveSet, DataTuple, FaultPlan, GraphBuilder, LinkKind, Operator, PortKind, RestartPolicy,
};
use std::sync::Arc;
use std::time::Duration;

/// Configuration of the parallel streaming-PCA application.
#[derive(Clone)]
pub struct AppConfig {
    /// Number of parallel PCA engines.
    pub n_engines: usize,
    /// PCA algorithm configuration (shared by every engine).
    pub pca: PcaConfig,
    /// Load-balancing strategy of the split.
    pub split: SplitStrategy,
    /// Synchronization topology.
    pub sync: SyncStrategy,
    /// Pacing of synchronization commands (paper: 0.5 s).
    pub sync_period: Duration,
    /// Wire explicit `Throttle` operators between controller and engines
    /// (the paper's arrangement); otherwise the controller self-paces.
    pub use_throttle: bool,
    /// Emit an eigensystem snapshot every `n` processed tuples per engine
    /// (0 = final snapshot only).
    pub snapshot_every: u64,
    /// Collect the per-tuple outcome feed (`[seq, r², t, w, outlier]`).
    pub emit_outcomes: bool,
    /// Collect flagged observations verbatim into a quarantine store
    /// ("flag outliers for further processing", §II-C).
    pub quarantine: bool,
    /// Fuse everything into one PE (single-node configuration).
    pub fuse: bool,
    /// Modeled per-message network overhead on cross-PE data links, in µs
    /// (charged once per transport frame; see [`LinkKind::Network`]).
    pub network_delay_us: u64,
    /// Cross-PE channel capacity.
    pub channel_capacity: usize,
    /// Cross-PE transport batch size (tuples per frame); `1` disables
    /// batching. See [`GraphBuilder::with_batch_size`].
    pub batch_size: usize,
    /// Persist every engine snapshot under this directory (§III-C's
    /// periodic saves); `None` disables persistence.
    pub snapshot_dir: Option<std::path::PathBuf>,
    /// Warm-start every engine from this eigensystem (e.g. read back with
    /// [`crate::persist::read_snapshot`]); engines skip warm-up.
    pub warm_start: Option<spca_core::EigenSystem>,
    /// Data-driven sync gate: engines share state only when their basis
    /// has drifted at least this far (subspace distance) from the last
    /// peer state they received. `None` = share whenever the `1.5·N`
    /// observation gate passes.
    pub divergence_gate: Option<f64>,
    /// Deterministic fault plan threaded into the dataflow engine (see
    /// [`FaultPlan::parse`]); targets must use operator names — run user
    /// specs through [`normalize_fault_targets`] first so `engine1` means
    /// `pca-1`.
    pub faults: Option<FaultPlan>,
    /// Supervised-restart policy for panicking operators.
    pub restart: RestartPolicy,
    /// When set, every engine synchronously persists its eigensystem under
    /// this directory (see [`StreamingPcaOp::with_recovery`]) and
    /// rehydrates from it after a supervised restart. Whole-PE restarts
    /// additionally keep per-PE snapshot manifests under `<dir>/pe`, from
    /// which *every* stateful operator in a killed PE is rehydrated.
    pub recovery_dir: Option<std::path::PathBuf>,
    /// Recovery-snapshot cadence in processed tuples.
    pub recovery_every: u64,
    /// Failure-aware synchronization: engines heartbeat to the controller,
    /// the controller skips dead engines (re-closing a ring around them)
    /// and re-admits restarted ones, and peer-state wiring becomes a full
    /// mesh so any surviving pair can still exchange state.
    pub failure_aware_sync: bool,
    /// An engine silent for this long counts as dead (failure-aware mode).
    pub liveness_timeout: Duration,
    /// Engines heartbeat every `n` processed tuples (failure-aware mode).
    pub heartbeat_every: u64,
    /// Serving layer: when set, every engine publishes epoch-numbered
    /// eigensystem snapshots into this store (see
    /// [`StreamingPcaOp::with_epoch_store`]) so HTTP query handlers can
    /// read the live estimate locklessly.
    pub epoch_store: Option<Arc<crate::epoch::EpochStore>>,
    /// Snapshot publication cadence in processed tuples per engine
    /// (0 = only on initialization, merges, and finish).
    pub publish_every: u64,
    /// Elastic autoscaling ceiling: when set, the builder provisions this
    /// many engines up front but only the first `n_engines` start active —
    /// the rest idle as standbys until an [`crate::autoscale`] supervisor
    /// admits them through the shared [`ActiveSet`]. Elastic mode implies
    /// failure-aware synchronization (full-mesh peer wiring, heartbeats,
    /// liveness-driven port maps), because the membership-independent mesh
    /// port map is what lets an admitted engine join without rewiring.
    pub max_engines: Option<usize>,
}

impl AppConfig {
    /// Defaults mirroring the paper's performance setup: random split,
    /// ring sync at 0.5 s, distributed placement.
    pub fn new(n_engines: usize, pca: PcaConfig) -> Self {
        AppConfig {
            n_engines,
            pca,
            split: SplitStrategy::Random,
            sync: SyncStrategy::Ring,
            sync_period: Duration::from_millis(500),
            use_throttle: false,
            snapshot_every: 0,
            emit_outcomes: false,
            quarantine: false,
            fuse: false,
            network_delay_us: 0,
            channel_capacity: 1024,
            batch_size: spca_streams::DEFAULT_BATCH_SIZE,
            snapshot_dir: None,
            warm_start: None,
            divergence_gate: None,
            faults: None,
            restart: RestartPolicy::default(),
            recovery_dir: None,
            recovery_every: 500,
            failure_aware_sync: false,
            liveness_timeout: Duration::from_millis(100),
            heartbeat_every: 64,
            epoch_store: None,
            publish_every: 64,
            max_engines: None,
        }
    }
}

/// Rewrites user-facing fault targets (`engine<k>`) to the graph's
/// operator names (`pca-<k>`), leaving everything else — including link
/// endpoints like `split` — untouched.
pub fn normalize_fault_targets(plan: FaultPlan) -> FaultPlan {
    plan.rename_targets(|name| {
        if let Some(k) = name.strip_prefix("engine") {
            if k.parse::<u32>().is_ok() {
                return format!("pca-{k}");
            }
        }
        name.to_string()
    })
}

/// Handles into a built application.
pub struct AppHandles {
    /// Snapshot hub (latest per-engine eigensystems, merged estimate).
    pub hub: ResultsHub,
    /// Outcome feed storage, when `emit_outcomes` was set.
    pub outcomes: Option<Arc<Mutex<Vec<DataTuple>>>>,
    /// Quarantined (flagged) observations, when `quarantine` was set.
    pub quarantined: Option<Arc<Mutex<Vec<DataTuple>>>>,
    /// Live handles to each engine's PCA state (one per *provisioned*
    /// engine in elastic mode, standbys included).
    pub engine_states: Vec<Arc<Mutex<RobustPca>>>,
    /// Shared membership handle in elastic mode: the autoscaler flips it,
    /// the split and sync controller obey it.
    pub active: Option<Arc<ActiveSet>>,
}

/// Builder for the complete application graph.
pub struct ParallelPcaApp;

impl ParallelPcaApp {
    /// Assembles the graph around the given data source. Returns the
    /// builder (run it with [`spca_streams::Engine`]) and the handles.
    pub fn build(cfg: &AppConfig, source: Box<dyn Operator>) -> (GraphBuilder, AppHandles) {
        Self::build_with_gate(cfg, source, None)
    }

    /// Like [`ParallelPcaApp::build`], with an explicit override of the
    /// engines' synchronization gate (observations required between state
    /// shares) — used by the gate ablation bench.
    pub fn build_with_gate(
        cfg: &AppConfig,
        source: Box<dyn Operator>,
        sync_gate: Option<u64>,
    ) -> (GraphBuilder, AppHandles) {
        assert!(cfg.n_engines >= 1, "need at least one engine");
        // Elastic mode provisions the ceiling up front; membership (which
        // prefix of the fleet is live) is the only thing that changes at
        // runtime, so the topology stays static while the fleet does not.
        let n = cfg
            .max_engines
            .map(|m| m.max(cfg.n_engines))
            .unwrap_or(cfg.n_engines);
        let elastic = cfg.max_engines.is_some() && n > 1;
        let active = elastic.then(|| ActiveSet::new(cfg.n_engines, n));
        let failure_aware =
            (cfg.failure_aware_sync || elastic) && n > 1 && !matches!(cfg.sync, SyncStrategy::None);
        let mut g = GraphBuilder::new()
            .with_channel_capacity(cfg.channel_capacity)
            .with_batch_size(cfg.batch_size)
            .with_restart_policy(cfg.restart);
        if let Some(ref plan) = cfg.faults {
            g = g.with_fault_plan(plan.clone());
        }
        if let Some(ref dir) = cfg.recovery_dir {
            // Whole-PE restarts rehydrate every stateful operator (source
            // cursor, split, engines, sync controller) from per-PE manifests
            // kept next to the engines' recovery snapshots.
            g = g.with_checkpoint_dir(dir.join("pe"));
        }
        let data_link = if cfg.fuse || cfg.network_delay_us == 0 {
            LinkKind::Local
        } else {
            LinkKind::Network {
                model_delay_us: cfg.network_delay_us,
            }
        };

        let src = g.add_source("source", source);
        let mut split_op = Split::new(cfg.split);
        if let Some(ref a) = active {
            split_op = split_op.with_active_set(Arc::clone(a));
        }
        let split = g.add_op("split", Box::new(split_op));
        g.connect(src, 0, split, PortKind::Data);

        // Engines with their peer topology.
        let mut engine_ids = Vec::with_capacity(n);
        let mut engine_states = Vec::with_capacity(n);
        let mut peer_lists = Vec::with_capacity(n);
        for i in 0..n {
            // Failure-aware mode wires a full peer mesh regardless of the
            // sync strategy: the controller decides receivers at command
            // time (survivors only), so every pair needs a port.
            let peers = if failure_aware {
                SyncStrategy::Broadcast.peers_of(i, n)
            } else {
                cfg.sync.peers_of(i, n)
            };
            let mut op = StreamingPcaOp::new(i as u32, cfg.pca.clone(), peers.len())
                .with_snapshots_every(cfg.snapshot_every);
            if let Some(ref dir) = cfg.recovery_dir {
                op = op.with_recovery(dir.clone(), cfg.recovery_every);
            }
            if failure_aware {
                op = op.with_heartbeats_every(cfg.heartbeat_every);
            }
            if let Some(gate) = sync_gate {
                op = op.with_sync_gate(gate);
            }
            if let Some(threshold) = cfg.divergence_gate {
                op = op.with_divergence_gate(threshold);
            }
            if let Some(ref store) = cfg.epoch_store {
                op = op.with_epoch_store(Arc::clone(store), cfg.publish_every);
            }
            if cfg.emit_outcomes {
                op = op.with_outcomes();
            }
            if cfg.quarantine {
                op = op.with_quarantine();
            }
            if let Some(ref warm) = cfg.warm_start {
                op = op
                    .with_initial_state(warm.clone())
                    .expect("warm-start state incompatible with PCA config");
            }
            engine_states.push(op.state_handle());
            let id = g.add_op(format!("pca-{i}"), Box::new(op));
            g.connect_kind(split, i, id, PortKind::Data, data_link);
            engine_ids.push(id);
            peer_lists.push(peers);
        }

        // Peer-state edges (engine i's port k → peer's control port).
        for (i, peers) in peer_lists.iter().enumerate() {
            for (port, &peer) in peers.iter().enumerate() {
                g.connect_kind(
                    engine_ids[i],
                    port,
                    engine_ids[peer],
                    PortKind::Control,
                    data_link,
                );
            }
        }

        // Synchronization controller (+ optional throttles).
        let mut ctrl_id = None;
        if !matches!(cfg.sync, SyncStrategy::None) && n > 1 {
            let period = if cfg.use_throttle {
                // The explicit throttles do the pacing; the controller only
                // needs to stay ahead of them.
                cfg.sync_period / 4
            } else {
                cfg.sync_period
            };
            // In elastic mode the ring starts at the *active* prefix and
            // reconciles against the membership handle on every drive.
            let ring_size = if elastic { cfg.n_engines } else { n };
            let mut controller = SyncController::new(cfg.sync, ring_size, period);
            if failure_aware {
                // Startup grace: engines announce themselves with their
                // first heartbeat; give slow starters a few timeouts.
                controller =
                    controller.with_liveness(cfg.liveness_timeout, cfg.liveness_timeout * 4);
            }
            if let Some(ref a) = active {
                controller = controller.with_membership(Arc::clone(a));
            }
            let ctrl = g.add_source("sync-controller", Box::new(controller));
            ctrl_id = Some(ctrl);
            // The controller watches the data stream so it winds down with
            // it: source out-port 1 never carries data (the generator only
            // emits on port 0) but is punctuated at end-of-stream like
            // every wired port, so the controller finishes exactly when
            // the stream does — without receiving a copy of the traffic.
            g.connect(src, 1, ctrl, PortKind::Data);
            for (i, &eng) in engine_ids.iter().enumerate() {
                if cfg.use_throttle {
                    let th = g.add_op(
                        format!("throttle-{i}"),
                        Box::new(Throttle::with_period(cfg.sync_period)),
                    );
                    g.connect(ctrl, i, th, PortKind::Control);
                    g.connect(th, 0, eng, PortKind::Control);
                } else {
                    g.connect(ctrl, i, eng, PortKind::Control);
                }
            }
        }

        // Monitor fan-in into the results hub.
        let hub = ResultsHub::new(n);
        let hub_for_sink = hub.clone();
        let monitor = g.add_op(
            "monitor",
            Box::new(CallbackSink::with_control(
                |_d: DataTuple| {},
                move |c: spca_streams::ControlTuple| {
                    if c.kind == KIND_SNAPSHOT {
                        if let Some(state) = c.payload_as::<PeerState>() {
                            hub_for_sink.record(state.clone());
                        }
                    }
                },
            )),
        );
        for (i, &eng) in engine_ids.iter().enumerate() {
            let monitor_port = peer_lists[i].len();
            g.connect(eng, monitor_port, monitor, PortKind::Control);
        }

        // Failure-aware mode: the controller also listens to every monitor
        // port, so heartbeats and snapshots double as liveness reports.
        if failure_aware {
            if let Some(ctrl) = ctrl_id {
                for (i, &eng) in engine_ids.iter().enumerate() {
                    let monitor_port = peer_lists[i].len();
                    g.connect(eng, monitor_port, ctrl, PortKind::Control);
                }
            }
        }

        // Optional snapshot persistence: a second consumer on each monitor
        // port.
        if let Some(ref dir) = cfg.snapshot_dir {
            let writer = g.add_op(
                "snapshot-writer",
                Box::new(crate::persist::SnapshotWriter::new(dir.clone())),
            );
            for (i, &eng) in engine_ids.iter().enumerate() {
                let monitor_port = peer_lists[i].len();
                g.connect(eng, monitor_port, writer, PortKind::Control);
            }
        }

        // Optional outcome collection.
        let outcomes = if cfg.emit_outcomes {
            let (sink, store) = CollectSink::new();
            let out = g.add_op("outcomes", Box::new(sink));
            for (i, &eng) in engine_ids.iter().enumerate() {
                let outcome_port = peer_lists[i].len() + 1;
                g.connect(eng, outcome_port, out, PortKind::Data);
            }
            Some(store)
        } else {
            None
        };

        // Optional quarantine collection.
        let quarantined = if cfg.quarantine {
            let (sink, store) = CollectSink::new();
            let q = g.add_op("quarantine", Box::new(sink));
            for (i, &eng) in engine_ids.iter().enumerate() {
                let port = peer_lists[i].len() + 2;
                g.connect(eng, port, q, PortKind::Data);
            }
            Some(store)
        } else {
            None
        };

        if cfg.fuse {
            // Single-node configuration: everything in one PE, tuples move
            // by pointer.
            let all: Vec<_> = g.edge_list().iter().flat_map(|e| [e.0, e.2]).collect();
            g.fuse(&all);
        }

        (
            g,
            AppHandles {
                hub,
                outcomes,
                quarantined,
                engine_states,
                active,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use spca_core::metrics::subspace_distance;
    use spca_spectra::PlantedSubspace;
    use spca_streams::ops::GeneratorSource;
    use spca_streams::Engine;

    const D: usize = 16;

    fn pca_cfg() -> PcaConfig {
        PcaConfig::new(D, 2)
            .with_memory(300)
            .with_init_size(20)
            .with_extra(0)
    }

    fn planted_source(n: u64, seed: u64) -> Box<dyn Operator> {
        let w = PlantedSubspace::new(D, 2, 0.05);
        let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed)));
        Box::new(
            GeneratorSource::new(move |_| Some((w.sample(&mut *rng.lock()), None)))
                .with_max_tuples(n),
        )
    }

    #[test]
    fn topology_matches_fig2() {
        let cfg = AppConfig::new(4, pca_cfg());
        let (g, _h) = ParallelPcaApp::build(&cfg, planted_source(10, 0));
        // source → split edge, split → 4 engines, 4 ring peer edges,
        // source → controller (shutdown watch), controller → 4 engines,
        // 4 monitor edges. Total 18.
        assert_eq!(g.edge_list().len(), 1 + 4 + 4 + 1 + 4 + 4);
        // The split has data in-degree 1; every engine exactly 1.
        let names = g.op_names();
        assert!(names.contains(&"split"));
        assert!(names.contains(&"sync-controller"));
        assert!(names.contains(&"monitor"));
        assert_eq!(names.iter().filter(|n| n.starts_with("pca-")).count(), 4);
    }

    #[test]
    fn end_to_end_parallel_run_recovers_subspace() {
        let mut cfg = AppConfig::new(4, pca_cfg());
        cfg.sync_period = Duration::from_millis(20);
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(4000, 11));
        let report = Engine::run(g);
        // All tuples were consumed by some engine.
        assert_eq!(report.tuples_in_matching("pca-"), 4000);
        // Every engine reported a final snapshot.
        assert_eq!(h.hub.engines_reporting(), 4);
        let merged = h.hub.merged_estimate().unwrap();
        // Ring merges mid-stream fold peer history into each engine, so
        // the merged count double-counts shared history: it is an upper
        // bound, while exact conservation is the tuples_in check above.
        assert!(merged.n_obs >= 4000);
        let truth = PlantedSubspace::new(D, 2, 0.05);
        let dist = subspace_distance(&merged.basis, truth.basis()).unwrap();
        assert!(dist < 0.25, "merged distance {dist}");
    }

    #[test]
    fn fused_single_node_run_works() {
        let mut cfg = AppConfig::new(3, pca_cfg());
        cfg.fuse = true;
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(1500, 12));
        let report = Engine::run(g);
        // Fused: no cross-PE links at all.
        assert!(report.links.is_empty(), "links: {:?}", report.links.len());
        assert_eq!(h.hub.engines_reporting(), 3);
    }

    #[test]
    fn outcome_feed_collects_rows() {
        let mut cfg = AppConfig::new(2, pca_cfg());
        cfg.emit_outcomes = true;
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(500, 13));
        Engine::run(g);
        let outcomes = h.outcomes.unwrap();
        let rows = outcomes.lock();
        // Warm-up tuples don't produce outcomes; everything after does.
        assert!(rows.len() > 400, "only {} outcome rows", rows.len());
        assert!(rows.iter().all(|r| r.values.len() == 5));
    }

    #[test]
    fn single_engine_no_sync_edges() {
        let cfg = AppConfig::new(1, pca_cfg());
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(800, 14));
        // source→split, split→pca, pca→monitor.
        assert_eq!(g.edge_list().len(), 3);
        Engine::run(g);
        assert_eq!(h.hub.engines_reporting(), 1);
        let eig = h.hub.merged_estimate().unwrap();
        assert_eq!(eig.n_obs, 800);
    }

    #[test]
    fn broadcast_topology_has_full_mesh() {
        let mut cfg = AppConfig::new(3, pca_cfg());
        cfg.sync = SyncStrategy::Broadcast;
        let (g, _h) = ParallelPcaApp::build(&cfg, planted_source(10, 15));
        // Peer edges: 3 engines × 2 peers = 6.
        let n_ctrl_peer_edges = g
            .edge_list()
            .iter()
            .filter(|(from, _, to, kind)| {
                *kind == PortKind::Control
                    && g.op_name(*from).starts_with("pca-")
                    && g.op_name(*to).starts_with("pca-")
            })
            .count();
        assert_eq!(n_ctrl_peer_edges, 6);
    }

    #[test]
    fn failure_aware_topology_has_full_mesh_and_liveness_edges() {
        let mut cfg = AppConfig::new(4, pca_cfg());
        cfg.failure_aware_sync = true; // ring strategy, but mesh wiring
        let (g, _h) = ParallelPcaApp::build(&cfg, planted_source(10, 18));
        // source→split 1, split→engines 4, full-mesh peer edges 4·3 = 12,
        // source→controller 1, controller→engines 4, monitor edges 4,
        // monitor→controller liveness edges 4.
        assert_eq!(g.edge_list().len(), 1 + 4 + 12 + 1 + 4 + 4 + 4);
    }

    #[test]
    fn failure_aware_run_converges_without_faults() {
        let mut cfg = AppConfig::new(3, pca_cfg());
        cfg.failure_aware_sync = true;
        cfg.sync_period = Duration::from_millis(5);
        cfg.heartbeat_every = 50;
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(3000, 19));
        let report = Engine::run(g);
        assert_eq!(report.tuples_in_matching("pca-"), 3000);
        assert_eq!(h.hub.engines_reporting(), 3);
        assert_eq!(report.total_restarts(), 0);
        let truth = PlantedSubspace::new(D, 2, 0.05);
        let merged = h.hub.merged_estimate().unwrap();
        let dist = subspace_distance(&merged.basis, truth.basis()).unwrap();
        assert!(dist < 0.3, "merged distance {dist}");
    }

    #[test]
    fn elastic_topology_provisions_standbys_with_mesh_wiring() {
        let mut cfg = AppConfig::new(1, pca_cfg());
        cfg.max_engines = Some(3);
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(10, 20));
        // Provisioned fleet of 3 with failure-aware wiring: source→split 1,
        // split→engines 3, full-mesh peer edges 3·2 = 6, source→controller
        // 1, controller→engines 3, monitor edges 3, liveness edges 3.
        assert_eq!(g.edge_list().len(), 1 + 3 + 6 + 1 + 3 + 3 + 3);
        let active = h.active.expect("elastic mode exposes the active set");
        assert_eq!(active.active(), 1, "only the initial prefix is live");
        assert_eq!(active.max(), 3);
        assert_eq!(h.engine_states.len(), 3, "standbys have state handles");
    }

    #[test]
    fn elastic_run_without_supervisor_keeps_standbys_idle() {
        let mut cfg = AppConfig::new(1, pca_cfg());
        cfg.max_engines = Some(3);
        cfg.sync_period = Duration::from_millis(5);
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(1200, 21));
        let report = Engine::run(g);
        // Nobody flipped the active set: all traffic lands on engine 0 and
        // the standbys never observe a tuple.
        assert_eq!(report.tuples_in_matching("pca-"), 1200);
        assert_eq!(h.engine_states[0].lock().n_obs(), 1200);
        assert_eq!(h.engine_states[1].lock().n_obs(), 0);
        assert_eq!(h.engine_states[2].lock().n_obs(), 0);
        assert_eq!(h.hub.engines_reporting(), 1, "standbys report nothing");
        assert_eq!(report.total_scale_outs(), 0);
        assert_eq!(report.total_scale_ins(), 0);
    }

    #[test]
    fn throttled_controller_variant_runs() {
        let mut cfg = AppConfig::new(2, pca_cfg());
        cfg.use_throttle = true;
        cfg.sync_period = Duration::from_millis(10);
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(600, 16));
        Engine::run(g);
        assert_eq!(h.hub.engines_reporting(), 2);
    }

    #[test]
    fn live_state_handles_observe_progress() {
        let cfg = AppConfig::new(2, pca_cfg());
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(1000, 17));
        Engine::run(g);
        let total: u64 = h.engine_states.iter().map(|s| s.lock().n_obs()).sum();
        assert_eq!(total, 1000);
    }
}
