//! Proves the backfill worker's steady-state feed loop is allocation-free.
//!
//! A `PartitionWorker` is built once per pool worker and reused across
//! every partition that worker drains; its estimator workspaces and row
//! parse buffers are allocated during warm-up and must then be reused —
//! per-row allocation in a corpus-sized backfill would dominate the run.
//! Same harness as `spca-core/tests/alloc_count.rs`: a counting global
//! allocator, warm up, then assert the hot loop never touches the heap.
//!
//! This file must contain exactly one `#[test]`: a sibling test running on
//! another thread would allocate concurrently and poison the counter.

use spca_core::PcaConfig;
use spca_engine::PartitionWorker;
use std::alloc::{GlobalAlloc, Layout, System};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicUsize, Ordering};

struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Deterministic pseudo-random stream without pulling rand into the
/// measured binary.
fn lcg_normal_ish(state: &mut u64) -> f64 {
    let mut s = 0.0;
    for _ in 0..4 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s += (*state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    s * 2.0
}

#[test]
fn backfill_worker_steady_state_performs_zero_allocations() {
    const D: usize = 24;
    const WARM_ROWS: usize = 200;
    const MEASURED_ROWS: usize = 400;

    // Pre-render the partition text: the corpus bytes exist before the
    // worker runs (the runner hands it a byte slice), so CSV formatting is
    // not part of the measured loop.
    let mut state = 0x5eed_f00d_u64;
    let mut corpus = String::new();
    for _ in 0..(WARM_ROWS + MEASURED_ROWS) {
        for j in 0..D {
            if j > 0 {
                corpus.push(',');
            }
            let v = lcg_normal_ish(&mut state);
            write!(corpus, "{v:.6}").unwrap();
        }
        corpus.push('\n');
    }

    let cfg = PcaConfig::new(D, 3).with_init_size(30).with_memory(500);
    let mut worker = PartitionWorker::new(cfg);

    // Simulate the pool's reuse pattern: a first partition warms every
    // buffer (estimator workspaces, parse buffers), then the worker is
    // reset for the next partition. The reset must keep the workspaces.
    let mut lines = corpus.lines();
    worker.begin();
    for line in lines.by_ref().take(WARM_ROWS) {
        worker.feed_line(line).unwrap();
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for line in lines {
        worker.feed_line(line).unwrap();
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state backfill feed allocated {} times over {MEASURED_ROWS} rows",
        after - before
    );
}
