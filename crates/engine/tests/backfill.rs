//! End-to-end tests of the partitioned backfill: parallel shard → persist
//! → tree-merge, its incrementality contract, and the splice into a live
//! streaming run.

use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::metrics::subspace_distance;
use spca_core::PcaConfig;
use spca_engine::persist::{encode_snapshot, read_snapshot, write_snapshot};
use spca_engine::{
    backfill, partition_csv_files, partition_csv_rows, AppConfig, BackfillConfig, ParallelPcaApp,
    PartitionWorker, SyncStrategy,
};
use spca_spectra::{io, PlantedSubspace};
use spca_streams::ops::CsvFileSource;
use spca_streams::Engine;
use std::path::PathBuf;

const D: usize = 12;
const P: usize = 3;

fn pca_cfg() -> PcaConfig {
    PcaConfig::new(D, P)
        .with_memory(2000)
        .with_init_size(20)
        .with_extra(2)
}

fn corpus(seed: u64, n: usize) -> Vec<Vec<f64>> {
    let planted = PlantedSubspace::new(D, P, 0.05);
    let mut rng = StdRng::seed_from_u64(seed);
    planted.sample_batch(&mut rng, n)
}

fn tmp_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("spca_backfill_it_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&d).ok();
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn write_corpus(path: &PathBuf, rows: &[Vec<f64>]) {
    io::write_csv(path, rows).unwrap();
}

/// The backfilled-then-merged eigensystem tracks a single sequential pass
/// over the same corpus. The agreement is approximate, not exact: each
/// partition re-warms its own M-scale and the merge truncates to p+q
/// components (documented merge tolerance, see DESIGN §9) — but the
/// recovered subspace must coincide and the eigenvalue mass must match.
#[test]
fn merged_backfill_matches_sequential_pass() {
    let dir = tmp_dir("seqmatch");
    let csv = dir.join("corpus.csv");
    write_corpus(&csv, &corpus(11, 1200));

    let cfg = BackfillConfig {
        pca: pca_cfg(),
        workers: 2,
        state_dir: dir.join("store"),
    };
    let partitions = partition_csv_rows(&csv, 4).unwrap();
    let outcome = backfill(&cfg, &partitions).unwrap();
    assert_eq!(outcome.stats.computed, 4);
    assert_eq!(outcome.merged.n_obs, 1200);

    let mut seq = PartitionWorker::new(pca_cfg());
    let text = std::fs::read_to_string(&csv).unwrap();
    let sequential = seq.process(&text).unwrap();

    let dist = subspace_distance(
        &outcome.merged.truncated(P).basis,
        &sequential.truncated(P).basis,
    )
    .unwrap();
    assert!(dist < 0.05, "merged vs sequential subspace distance {dist}");
    let m: f64 = outcome.merged.values.iter().sum();
    let s: f64 = sequential.values.iter().sum();
    assert!(
        (m - s).abs() < 0.25 * s.max(1e-9),
        "eigenvalue mass {m} vs {s}"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// A warm re-run over an unchanged corpus is pure cache hits and produces
/// a bit-identical merged eigensystem — the determinism chain the CI gate
/// enforces (exact snapshot codec + merge from decoded store bytes +
/// fixed tree pairing).
#[test]
fn warm_rerun_is_full_cache_hit_and_bit_identical() {
    let dir = tmp_dir("warm");
    let csv = dir.join("corpus.csv");
    write_corpus(&csv, &corpus(12, 800));
    let cfg = BackfillConfig {
        pca: pca_cfg(),
        workers: 3,
        state_dir: dir.join("store"),
    };
    let partitions = partition_csv_rows(&csv, 5).unwrap();
    let cold = backfill(&cfg, &partitions).unwrap();
    assert_eq!(cold.stats.computed, 5);
    assert_eq!(cold.stats.cache_hits, 0);

    // Re-partitioning the unchanged corpus must reproduce ids and hashes.
    let again = partition_csv_rows(&csv, 5).unwrap();
    for (a, b) in partitions.iter().zip(&again) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.content_hash, b.content_hash);
    }

    let warm = backfill(&cfg, &again).unwrap();
    assert_eq!(warm.stats.cache_hits, 5);
    assert_eq!(warm.stats.computed, 0);
    assert_eq!(
        encode_snapshot(&cold.merged),
        encode_snapshot(&warm.merged),
        "warm merged eigensystem must be bit-identical to cold"
    );

    // Different worker counts must not change the result either.
    let one_worker = backfill(
        &BackfillConfig {
            workers: 1,
            ..cfg.clone()
        },
        &again,
    )
    .unwrap();
    assert_eq!(
        encode_snapshot(&cold.merged),
        encode_snapshot(&one_worker.merged)
    );
    std::fs::remove_dir_all(dir).ok();
}

/// Appending one partition to a by-file corpus recomputes exactly that
/// partition — the O(partition), never O(history), incrementality claim.
#[test]
fn adding_a_partition_recomputes_exactly_one() {
    let dir = tmp_dir("incremental");
    let data = corpus(13, 1000);
    for (i, chunk) in data.chunks(250).enumerate() {
        write_corpus(&dir.join(format!("day{i}.csv")), chunk);
    }
    let files =
        |n: usize| -> Vec<PathBuf> { (0..n).map(|i| dir.join(format!("day{i}.csv"))).collect() };
    let cfg = BackfillConfig {
        pca: pca_cfg(),
        workers: 2,
        state_dir: dir.join("store"),
    };
    let first = backfill(&cfg, &partition_csv_files(&files(3)).unwrap()).unwrap();
    assert_eq!(first.stats.computed, 3);
    assert_eq!(first.merged.n_obs, 750);

    // "Yesterday's observations arrive": one new file, three cache hits.
    let second = backfill(&cfg, &partition_csv_files(&files(4)).unwrap()).unwrap();
    assert_eq!(second.stats.cache_hits, 3);
    assert_eq!(second.stats.computed, 1);
    assert_eq!(second.merged.n_obs, 1000);
    std::fs::remove_dir_all(dir).ok();
}

/// Editing one partition's bytes invalidates exactly that store entry: the
/// content hash is the cache key, not the file name or mtime.
#[test]
fn content_change_invalidates_one_partition() {
    let dir = tmp_dir("invalidate");
    let data = corpus(14, 800);
    for (i, chunk) in data.chunks(200).enumerate() {
        write_corpus(&dir.join(format!("plate{i}.csv")), chunk);
    }
    let files: Vec<PathBuf> = (0..4).map(|i| dir.join(format!("plate{i}.csv"))).collect();
    let cfg = BackfillConfig {
        pca: pca_cfg(),
        workers: 2,
        state_dir: dir.join("store"),
    };
    backfill(&cfg, &partition_csv_files(&files).unwrap()).unwrap();

    // Recalibrate plate 2: same shape, different bytes.
    let recal: Vec<Vec<f64>> = data[400..600]
        .iter()
        .map(|r| r.iter().map(|v| v * 1.01).collect())
        .collect();
    write_corpus(&files[2], &recal);

    let rerun = backfill(&cfg, &partition_csv_files(&files).unwrap()).unwrap();
    assert_eq!(rerun.stats.cache_hits, 3);
    assert_eq!(rerun.stats.computed, 1);
    std::fs::remove_dir_all(dir).ok();
}

/// Splicing the merged backfill state into a live streaming run through
/// `AppConfig::warm_start` resumes bit-identically whether the state comes
/// from memory or from a persisted snapshot — the same guarantee the
/// checkpoint-rehydration path gives, because both feed the same
/// `install_eigensystem` entry point and the snapshot codec is exact.
#[test]
fn splice_resumes_bit_identically_from_memory_and_disk() {
    let dir = tmp_dir("splice");
    let csv = dir.join("history.csv");
    write_corpus(&csv, &corpus(15, 600));
    let cfg = BackfillConfig {
        pca: pca_cfg(),
        workers: 2,
        state_dir: dir.join("store"),
    };
    let outcome = backfill(&cfg, &partition_csv_rows(&csv, 3).unwrap()).unwrap();

    // Round-trip the merged state through disk.
    let snap = dir.join("merged.snapshot");
    write_snapshot(&snap, &outcome.merged).unwrap();
    let from_disk = read_snapshot(&snap).unwrap();

    let live = dir.join("live.csv");
    write_corpus(&live, &corpus(16, 400));

    let run = |warm: spca_core::EigenSystem| -> Vec<u8> {
        // One engine, no synchronization: the stream is consumed in order
        // and nothing wall-clock-driven perturbs the state trajectory.
        let mut app = AppConfig::new(1, pca_cfg());
        app.sync = SyncStrategy::None;
        app.warm_start = Some(warm);
        let (graph, handles) = ParallelPcaApp::build(&app, Box::new(CsvFileSource::new(&live)));
        Engine::run(graph);
        let state = handles.engine_states[0].lock();
        encode_snapshot(state.full_eigensystem().expect("initialized by warm start"))
    };

    let from_memory_bytes = run(outcome.merged.clone());
    let from_disk_bytes = run(from_disk);
    assert_eq!(
        from_memory_bytes, from_disk_bytes,
        "memory-spliced and disk-spliced runs must end in identical state"
    );
    std::fs::remove_dir_all(dir).ok();
}
