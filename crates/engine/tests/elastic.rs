//! Elastic autoscaling acceptance tests (the issue's bar):
//!
//! 1. A scripted rescale — scale out mid-stream, scale back in before the
//!    end — must lose zero tuples, count both membership changes in the
//!    run report, bootstrap the joiner from the fleet's merged history,
//!    and finish within the documented subspace tolerance of a
//!    fixed-fleet reference run.
//! 2. A joining engine shares only after the `1.5·N` independence gate
//!    re-passes on *fresh* observations — bootstrapped history alone must
//!    not open the gate.
//! 3. `kill-pe` landing during an in-flight scale-out: the PE rehydrates,
//!    the admitted engine stays in the ring, and the run still converges.
//! 4. `io-fsync-err` active across the retiring engine's final drain and
//!    merge: persistence degrades (counters incremented), no engine dies,
//!    and the merged estimate stays within tolerance.
//! 5. A load-swing run under the live `ElasticSupervisor`: the saturated
//!    phase scales the fleet out, the trickle phase shrinks it again, and
//!    every tuple is processed exactly once across both rescales.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::metrics::subspace_distance;
use spca_core::{EigenSystem, PcaConfig};
use spca_engine::{
    normalize_fault_targets, AppConfig, ElasticRuntime, ElasticSupervisor, ParallelPcaApp,
    StreamingPcaOp, SyncCommand, SyncStrategy, KIND_SYNC_COMMAND,
};
use spca_spectra::PlantedSubspace;
use spca_streams::operator::testing::with_ctx;
use spca_streams::ops::GeneratorSource;
use spca_streams::{ControlTuple, DataTuple, Engine, FaultPlan, Operator};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const D: usize = 16;

/// Documented consistency bound: the elastic run's merged eigensystem and
/// a fixed-fleet reference over the same observations must agree to this
/// subspace distance (both independently land within 0.2 of the planted
/// truth; see `fig_elastic` for the benchmarked figure).
const CONSISTENCY_TOL: f64 = 0.25;

fn pca_cfg() -> PcaConfig {
    PcaConfig::new(D, 2)
        .with_memory(300)
        .with_init_size(20)
        .with_extra(0)
}

/// Seeded planted-subspace stream. Identical draws across calls with the
/// same seed, so the elastic run and its fixed-fleet reference see the
/// same observations (pacing changes timing, never values).
fn seeded_source(seed: u64, n: u64, rate: Option<f64>) -> Box<dyn Operator> {
    let w = PlantedSubspace::new(D, 2, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed)));
    let mut src =
        GeneratorSource::new(move |_| Some((w.sample(&mut *rng.lock()), None))).with_max_tuples(n);
    if let Some(per_sec) = rate {
        src = src.with_rate(per_sec);
    }
    Box::new(src)
}

/// Elastic app config: `start` engines active out of `max` provisioned.
/// Elastic mode forces failure-aware mesh wiring internally.
fn elastic_cfg(start: usize, max: usize) -> AppConfig {
    let mut cfg = AppConfig::new(start, pca_cfg());
    cfg.sync = SyncStrategy::Ring;
    cfg.sync_period = Duration::from_millis(5);
    cfg.heartbeat_every = 32;
    cfg.liveness_timeout = Duration::from_millis(500);
    cfg.channel_capacity = 4096;
    cfg.max_engines = Some(max);
    cfg
}

fn tmp_dir(label: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("spca_elastic_{}_{label}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    false
}

/// Fixed-fleet reference: one engine, unpaced, same observations.
fn fixed_fleet_reference(seed: u64, n: u64) -> EigenSystem {
    let cfg = AppConfig::new(1, pca_cfg());
    let (g, h) = ParallelPcaApp::build(&cfg, seeded_source(seed, n, None));
    Engine::run(g);
    let eig = h.engine_states[0]
        .lock()
        .full_eigensystem()
        .expect("reference run initialized")
        .clone();
    eig
}

fn assert_near_truth_and_reference(merged: &EigenSystem, reference: &EigenSystem, dim: usize) {
    let truth = PlantedSubspace::new(dim, 2, 0.05);
    let to_truth = subspace_distance(&merged.basis, truth.basis()).unwrap();
    assert!(
        to_truth < 0.2,
        "merged estimate vs planted truth: {to_truth}"
    );
    let to_ref = subspace_distance(&merged.basis, &reference.basis).unwrap();
    assert!(
        to_ref < CONSISTENCY_TOL,
        "merged estimate vs fixed-fleet reference: {to_ref} (tolerance {CONSISTENCY_TOL})"
    );
}

#[test]
fn scripted_rescale_conserves_tuples_and_matches_fixed_fleet_reference() {
    const N: u64 = 40_000;
    let cfg = elastic_cfg(1, 3);
    let (g, h) = ParallelPcaApp::build(&cfg, seeded_source(11, N, Some(30_000.0)));
    let rt = ElasticRuntime::new(&h).expect("elastic handles expose a runtime");
    let running = Engine::start(g);

    // Scale out once engine 0 is warmed up well past init.
    assert!(
        wait_until(Duration::from_secs(30), || h.engine_states[0]
            .lock()
            .n_obs()
            > 5_000),
        "engine 0 never warmed up"
    );
    let donor_obs = h.engine_states[0].lock().n_obs();
    rt.scale_out().expect("scale out");
    assert_eq!(rt.active(), 2);

    // The joiner was bootstrapped from the fleet's merged eigensystem in
    // checkpoint format: it starts with the donors' history, not zero.
    assert!(
        h.engine_states[1].lock().n_obs() >= donor_obs / 2,
        "joiner must carry bootstrapped history"
    );

    // Let the joiner take live traffic, then retire it again.
    let at_join = h.engine_states[1].lock().n_obs();
    assert!(
        wait_until(Duration::from_secs(30), || h.engine_states[1]
            .lock()
            .n_obs()
            > at_join + 2_000),
        "joiner never took live traffic"
    );
    rt.scale_in().expect("scale in");
    assert_eq!(rt.active(), 1);

    let report = running.join();

    // Zero tuple loss across both membership changes.
    assert_eq!(report.tuples_in_matching("pca-"), N);
    assert_eq!(report.op("source").unwrap().tuples_out, N);

    // The controller reconciled both membership changes and the counters
    // surfaced in the run report.
    assert_eq!(report.total_scale_outs(), 1);
    assert_eq!(report.total_scale_ins(), 1);
    assert_eq!(report.total_restarts(), 0);
    assert_eq!(report.total_pe_restarts(), 0);

    // The retiree was folded into the survivor and reset: its state is
    // uninitialized, the survivor holds the fleet's combined history.
    assert!(h.engine_states[1].lock().full_eigensystem().is_none());

    let merged = rt.merged_active_eigensystem().expect("merged estimate");
    let reference = fixed_fleet_reference(11, N);
    assert_near_truth_and_reference(&merged, &reference, D);
}

#[test]
fn joining_engine_shares_only_after_the_independence_gate_repasses() {
    // memory 200 → sync gate ⌈1.5·200⌉ = 300.
    let gate_cfg = || {
        PcaConfig::new(D, 2)
            .with_memory(200)
            .with_init_size(20)
            .with_extra(0)
    };
    let feed = |op: &mut StreamingPcaOp, n: usize, seed: u64| {
        let w = PlantedSubspace::new(D, 2, 0.05);
        let mut rng = StdRng::seed_from_u64(seed);
        with_ctx(3, |ctx| {
            for seq in 0..n {
                op.process(DataTuple::new(seq as u64, w.sample(&mut rng)), ctx);
            }
        });
    };
    let cmd = || {
        ControlTuple::new(
            KIND_SYNC_COMMAND,
            99,
            Arc::new(SyncCommand {
                share_ports: vec![0],
            }),
        )
    };

    // Donor: a warmed-up engine whose eigensystem seeds the joiner.
    let mut donor = StreamingPcaOp::new(0, gate_cfg(), 1);
    feed(&mut donor, 800, 7);
    let eig = donor
        .state_handle()
        .lock()
        .full_eigensystem()
        .expect("donor initialized")
        .clone();

    // Joiner: fresh operator bootstrapped the way `ElasticRuntime` does
    // it — the donor history installed into its state handle. History
    // alone must not open the gate: `obs_since_sync` starts at zero.
    let mut joiner = StreamingPcaOp::new(1, gate_cfg(), 1);
    joiner
        .state_handle()
        .lock()
        .install_eigensystem(eig)
        .unwrap();
    let sink = with_ctx(3, |ctx| joiner.on_control(cmd(), ctx));
    assert!(
        sink.ports[0].is_empty(),
        "freshly joined engine must not share before re-earning independence"
    );

    // 300 fresh observations: exactly at the gate — still shut (strict >).
    feed(&mut joiner, 300, 8);
    let sink = with_ctx(3, |ctx| joiner.on_control(cmd(), ctx));
    assert!(sink.ports[0].is_empty(), "obs == gate must stay gated");

    // One more fresh observation re-passes 1.5·N: the share flows.
    feed(&mut joiner, 1, 9);
    let sink = with_ctx(3, |ctx| joiner.on_control(cmd(), ctx));
    assert_eq!(
        sink.ports[0].len(),
        1,
        "gate re-passed on fresh observations → joiner rejoins the exchange"
    );
}

#[test]
fn kill_pe_during_scale_out_recovers_and_converges() {
    const N: u64 = 40_000;
    let dir = tmp_dir("killpe");
    let mut cfg = elastic_cfg(1, 3);
    cfg.recovery_dir = Some(dir.clone());
    cfg.recovery_every = 500;
    // Engine 0's whole PE dies at its 6000th tuple — right after the
    // scripted scale-out below, so the join (bootstrap + ring admission)
    // is in flight while the donor PE is torn down and rehydrated.
    cfg.faults = Some(normalize_fault_targets(
        FaultPlan::parse("kill-pe@engine0:6000").unwrap(),
    ));
    let (g, h) = ParallelPcaApp::build(&cfg, seeded_source(21, N, Some(30_000.0)));
    let rt = ElasticRuntime::new(&h).unwrap();
    let running = Engine::start(g);

    assert!(
        wait_until(Duration::from_secs(30), || h.engine_states[0]
            .lock()
            .n_obs()
            > 5_000),
        "engine 0 never warmed up"
    );
    rt.scale_out().expect("scale out");
    assert_eq!(rt.active(), 2);

    let report = running.join();

    // The PE teardown lost nothing, the restart and the rescale are both
    // counted, and the admitted engine kept the fleet converging.
    assert_eq!(report.tuples_in_matching("pca-"), N);
    assert!(
        report.total_pe_restarts() >= 1,
        "PE restart must be counted"
    );
    assert_eq!(report.total_scale_outs(), 1);

    let merged = rt.merged_active_eigensystem().expect("merged estimate");
    let reference = fixed_fleet_reference(21, N);
    assert_near_truth_and_reference(&merged, &reference, D);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn fsync_faults_during_retire_merge_degrade_gracefully() {
    const N: u64 = 40_000;
    let dir = tmp_dir("fsync");
    let mut cfg = elastic_cfg(2, 3);
    cfg.recovery_dir = Some(dir.clone());
    cfg.recovery_every = 400;
    // Every fsync fails for the whole run — including across the retiring
    // engine's final drain and merge. Persistence must degrade (counted),
    // never kill an engine or corrupt the in-memory merge.
    cfg.faults = Some(normalize_fault_targets(
        FaultPlan::parse("io-fsync-err").unwrap(),
    ));
    let (g, h) = ParallelPcaApp::build(&cfg, seeded_source(31, N, Some(30_000.0)));
    let rt = ElasticRuntime::new(&h).unwrap();
    let running = Engine::start(g);

    assert!(
        wait_until(Duration::from_secs(30), || {
            h.engine_states[0].lock().n_obs() + h.engine_states[1].lock().n_obs() > 8_000
        }),
        "fleet never warmed up"
    );
    rt.scale_out().expect("scale out");
    let at_join = h.engine_states[2].lock().n_obs();
    assert!(
        wait_until(Duration::from_secs(30), || h.engine_states[2]
            .lock()
            .n_obs()
            > at_join + 2_000),
        "joiner never took live traffic"
    );
    rt.scale_in().expect("scale in");
    assert_eq!(rt.active(), 2);

    let report = running.join();

    assert_eq!(report.tuples_in_matching("pca-"), N);
    assert_eq!(report.total_scale_outs(), 1);
    assert_eq!(report.total_scale_ins(), 1);
    assert!(
        report.total_io_faults() + report.total_checkpoint_skips() >= 1,
        "failed fsyncs must be visible in the fault counters"
    );
    assert_eq!(
        report.total_restarts() + report.total_pe_restarts(),
        0,
        "storage degradation must not kill engines"
    );

    let merged = rt.merged_active_eigensystem().expect("merged estimate");
    let reference = fixed_fleet_reference(31, N);
    assert_near_truth_and_reference(&merged, &reference, D);

    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn load_swing_scales_out_and_back_in_with_zero_loss() {
    // Heavy per-tuple update (d=96, 18 tracked components) makes the
    // engines the bottleneck by a wide margin over the cheap generator,
    // on any machine: the unthrottled phase builds real backlog. The
    // trickle phase paces the source far below one engine's capacity, so
    // the supervisor must shrink the fleet again before the stream ends.
    const HEAVY: u64 = 20_000;
    const TOTAL: u64 = 28_000;
    const DIM: usize = 64;
    let pcfg = PcaConfig::new(DIM, 2)
        .with_memory(400)
        .with_init_size(30)
        .with_extra(12);
    let mut cfg = AppConfig::new(1, pcfg);
    cfg.sync = SyncStrategy::Ring;
    cfg.sync_period = Duration::from_millis(5);
    cfg.heartbeat_every = 64;
    cfg.liveness_timeout = Duration::from_millis(500);
    cfg.channel_capacity = 8192;
    cfg.max_engines = Some(3);

    let w = PlantedSubspace::new(DIM, 2, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(5)));
    let source = GeneratorSource::new(move |seq| {
        if seq >= HEAVY {
            std::thread::sleep(Duration::from_micros(200));
        }
        Some((w.sample(&mut *rng.lock()), None))
    })
    .with_max_tuples(TOTAL);

    let (g, h) = ParallelPcaApp::build(&cfg, Box::new(source));
    let rt = ElasticRuntime::new(&h).unwrap();
    let mut sup = ElasticSupervisor::new(rt, Duration::from_millis(30));
    let running = Engine::start(g);
    while !running.is_finished() {
        sup.tick(&running);
        std::thread::sleep(Duration::from_millis(5));
    }
    let report = running.join();

    let (outs, ins) = sup.event_counts();
    assert!(
        outs >= 1,
        "the saturated phase must trigger a scale-out (events: {:?})",
        sup.events
    );
    assert!(
        ins >= 1,
        "the trickle phase must let the fleet shrink (events: {:?})",
        sup.events
    );
    assert!(report.total_scale_outs() >= 1);
    assert!(report.total_scale_ins() >= 1);

    // Zero tuple loss across every rescale the supervisor performed.
    assert_eq!(report.op("source").unwrap().tuples_out, TOTAL);
    assert_eq!(report.tuples_in_matching("pca-"), TOTAL);

    let merged = sup
        .runtime()
        .merged_active_eigensystem()
        .expect("merged estimate");
    let truth = PlantedSubspace::new(DIM, 2, 0.05);
    let dist = subspace_distance(&merged.basis, truth.basis()).unwrap();
    assert!(dist < 0.2, "merged estimate vs planted truth: {dist}");
}
