//! Regression tests: synchronization behaviour is invariant under the
//! cross-PE transport batch size. Batching changes how tuples travel
//! (frames vs. one-at-a-time), never what the application computes.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::{EigenSystem, PcaConfig};
use spca_engine::messages::KIND_SNAPSHOT;
use spca_engine::{
    AppConfig, ParallelPcaApp, PeerState, StreamingPcaOp, SyncStrategy, KIND_PEER_STATE,
};
use spca_spectra::PlantedSubspace;
use spca_streams::{
    ControlTuple, DataTuple, Engine, GraphBuilder, OpContext, Operator, PortKind, SourceState,
};
use std::sync::Arc;

const D: usize = 16;
const K: usize = 2;

fn pca_cfg() -> PcaConfig {
    PcaConfig::new(D, K)
        .with_memory(300)
        .with_init_size(20)
        .with_extra(0)
}

/// A deterministic, shape-valid peer eigensystem to inject mid-stream.
fn scripted_peer() -> PeerState {
    let mut eig = EigenSystem::zeros(D, K);
    eig.basis[(D - 1, 0)] = 1.0;
    eig.basis[(D - 2, 1)] = 1.0;
    eig.values = vec![1.0, 0.5];
    eig.sigma2 = 0.5;
    eig.sum_u = 10.0;
    eig.sum_v = 10.0;
    eig.sum_q = 1.0;
    eig.n_obs = 50;
    PeerState {
        engine: 7,
        eigensystem: eig,
        n_obs: 50,
        shares_sent: 0,
        merges_applied: 0,
    }
}

/// Emits a fixed list of observations and, right before observation
/// `inject_at`, one inline `KIND_PEER_STATE` control tuple — all on the
/// same output port, so FIFO ordering fixes exactly where in the stream
/// the merge happens, whatever the transport batch size.
struct ScriptedSource {
    samples: Vec<Vec<f64>>,
    inject_at: usize,
    next: usize,
}

impl Operator for ScriptedSource {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
    fn drive(&mut self, ctx: &mut OpContext<'_>) -> SourceState {
        if self.next == self.inject_at {
            ctx.emit_control(
                0,
                ControlTuple::new(KIND_PEER_STATE, 7, Arc::new(scripted_peer())),
            );
        }
        if self.next >= self.samples.len() {
            return SourceState::Done;
        }
        ctx.emit_data(
            0,
            DataTuple::new(self.next as u64, self.samples[self.next].clone()),
        );
        self.next += 1;
        SourceState::Emitted
    }
}

/// Captures the engine's final monitor snapshot.
struct SnapshotSink {
    store: Arc<Mutex<Vec<PeerState>>>,
}

impl Operator for SnapshotSink {
    fn process(&mut self, _t: DataTuple, _ctx: &mut OpContext<'_>) {}
    fn on_control(&mut self, c: ControlTuple, _ctx: &mut OpContext<'_>) {
        if c.kind == KIND_SNAPSHOT {
            if let Some(st) = c.payload_as::<PeerState>() {
                self.store.lock().push(st.clone());
            }
        }
    }
}

/// Runs `scripted source → pca (cross-PE) → monitor sink` at the given
/// batch size and returns (merges applied, final eigensystem).
fn run_scripted(batch: usize, samples: &[Vec<f64>]) -> (u64, EigenSystem) {
    let mut g = GraphBuilder::new().with_batch_size(batch);
    let src = g.add_source(
        "src",
        Box::new(ScriptedSource {
            samples: samples.to_vec(),
            inject_at: 600,
            next: 0,
        }),
    );
    let pca = g.add_op("pca-0", Box::new(StreamingPcaOp::new(0, pca_cfg(), 1)));
    let store = Arc::new(Mutex::new(Vec::new()));
    let mon = g.add_op(
        "monitor",
        Box::new(SnapshotSink {
            store: Arc::clone(&store),
        }),
    );
    g.connect(src, 0, pca, PortKind::Data);
    g.connect(pca, 1, mon, PortKind::Control);
    Engine::run(g);
    let snaps = store.lock();
    let last = snaps.last().expect("final snapshot expected");
    (last.merges_applied, last.eigensystem.clone())
}

fn assert_eigensystems_identical(a: &EigenSystem, b: &EigenSystem, what: &str) {
    assert_eq!(a.mean, b.mean, "{what}: mean differs");
    assert_eq!(
        a.basis.as_slice(),
        b.basis.as_slice(),
        "{what}: basis differs"
    );
    assert_eq!(a.values, b.values, "{what}: eigenvalues differ");
    assert_eq!(a.sigma2, b.sigma2, "{what}: sigma2 differs");
    assert_eq!(a.sum_u, b.sum_u, "{what}: sum_u differs");
    assert_eq!(a.sum_v, b.sum_v, "{what}: sum_v differs");
    assert_eq!(a.sum_q, b.sum_q, "{what}: sum_q differs");
    assert_eq!(a.n_obs, b.n_obs, "{what}: n_obs differs");
}

/// The core regression: on a seeded stream with an inline peer-state merge,
/// batch size 1 and batch size 64 produce the same merge count and a
/// bit-identical final eigensystem. A transport that reordered control
/// tuples relative to data, or dropped/duplicated anything, would move the
/// merge point and change the floating-point trajectory.
#[test]
fn sync_merge_is_batch_invariant() {
    let w = PlantedSubspace::new(D, K, 0.05);
    let mut rng = StdRng::seed_from_u64(0xBA7C);
    let samples: Vec<Vec<f64>> = (0..900).map(|_| w.sample(&mut rng)).collect();

    let (merges_1, eig_1) = run_scripted(1, &samples);
    assert_eq!(merges_1, 1, "exactly one injected peer state");
    for batch in [8, 64] {
        let (merges_b, eig_b) = run_scripted(batch, &samples);
        assert_eq!(merges_b, 1, "batch {batch}: merge count differs");
        assert_eigensystems_identical(&eig_1, &eig_b, &format!("batch {batch}"));
    }
    eig_1.check_invariants().unwrap();
}

/// Full-application smoke test: a ring-synchronized parallel run completes
/// and delivers every observation to the PCA tier at every batch size, and
/// the merged estimate recovers the planted subspace.
#[test]
fn parallel_app_delivers_everything_at_every_batch_size() {
    const N: u64 = 2000;
    for batch in [1, 64] {
        let w = PlantedSubspace::new(D, K, 0.05);
        let mut rng = StdRng::seed_from_u64(21);
        let mut left = N;
        let source = spca_streams::ops::GeneratorSource::new(move |_seq| {
            if left == 0 {
                return None;
            }
            left -= 1;
            Some((w.sample(&mut rng), None))
        });
        let mut cfg = AppConfig::new(2, pca_cfg());
        cfg.sync = SyncStrategy::Ring;
        cfg.sync_period = std::time::Duration::from_millis(5);
        cfg.batch_size = batch;
        let (g, h) = ParallelPcaApp::build_with_gate(&cfg, Box::new(source), Some(0));
        let report = Engine::run(g);
        assert_eq!(
            report.tuples_in_matching("pca-"),
            N,
            "batch {batch}: observations lost or duplicated"
        );
        let merged = h.hub.merged_estimate().expect("snapshots expected");
        let dist =
            spca_core::metrics::subspace_distance(&merged.basis, w_basis_ref().basis()).unwrap();
        assert!(dist < 0.25, "batch {batch}: distance {dist}");
    }
}

fn w_basis_ref() -> PlantedSubspace {
    PlantedSubspace::new(D, K, 0.05)
}
