//! End-to-end fault-tolerance acceptance tests (the issue's bar):
//!
//! 1. A seeded 4-engine run with `panic@engine1:5000` must restart the
//!    engine from its recovery snapshot and finish with zero data-tuple
//!    loss outside the declared fault window, a final eigensystem within
//!    1e-6 subspace affinity of the fault-free run (here: bit-equal), and
//!    restart/quarantine/skipped-sync counts visible in the `RunReport`.
//! 2. A ring with one engine killed outright (no recovery directory) must
//!    still complete and converge: the failure-aware controller re-closes
//!    the ring around the corpse.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::metrics::subspace_distance;
use spca_core::{EigenSystem, PcaConfig};
use spca_engine::{normalize_fault_targets, AppConfig, ParallelPcaApp, SyncStrategy};
use spca_spectra::PlantedSubspace;
use spca_streams::ops::{GeneratorSource, SplitStrategy};
use spca_streams::{Engine, FaultPlan, Operator, RunReport};
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

const D: usize = 16;
const N_TUPLES: u64 = 40_000;

/// Non-finite observations injected at the source. All chosen ≢ 1 (mod 4)
/// so under strict round-robin none lands on engine 1 — the engine whose
/// restart must rehydrate *exactly* the state its recovery snapshot froze
/// at tuple 5000.
const NAN_SEQS: [u64; 8] = [100, 202, 303, 1000, 2002, 5003, 30_000, 30_002];

fn pca_cfg() -> PcaConfig {
    PcaConfig::new(D, 2)
        .with_memory(300)
        .with_init_size(20)
        .with_extra(0)
}

/// A seeded planted-subspace stream with the NaN tuples of `NAN_SEQS`
/// swapped in. Identical across calls: both the clean and the faulted run
/// see bit-identical observations in the same order.
fn seeded_source(seed: u64) -> Box<dyn Operator> {
    let w = PlantedSubspace::new(D, 2, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed)));
    Box::new(
        GeneratorSource::new(move |seq| {
            let v = w.sample(&mut *rng.lock());
            if NAN_SEQS.contains(&seq) {
                Some((vec![f64::NAN; D], None))
            } else {
                Some((v, None))
            }
        })
        .with_max_tuples(N_TUPLES),
    )
}

fn tmp_dir(label: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!("spca_ft_{}_{label}", std::process::id()));
    std::fs::remove_dir_all(&p).ok();
    p
}

fn op_snapshot(report: &RunReport, name: &str) -> spca_streams::metrics::OpSnapshot {
    report
        .ops
        .iter()
        .find(|(n, _)| n == name)
        .unwrap_or_else(|| panic!("no op '{name}' in report"))
        .1
}

fn assert_eig_bits_equal(engine: usize, a: &EigenSystem, b: &EigenSystem) {
    assert_eq!(a.n_obs, b.n_obs, "engine {engine}: n_obs");
    assert_eq!(
        a.sigma2.to_bits(),
        b.sigma2.to_bits(),
        "engine {engine}: sigma2"
    );
    assert_eq!(
        a.sum_v.to_bits(),
        b.sum_v.to_bits(),
        "engine {engine}: sum_v"
    );
    for (x, y) in a.values.iter().zip(&b.values) {
        assert_eq!(x.to_bits(), y.to_bits(), "engine {engine}: eigenvalue");
    }
    for (x, y) in a.mean.iter().zip(&b.mean) {
        assert_eq!(x.to_bits(), y.to_bits(), "engine {engine}: mean");
    }
    assert_eq!(
        a.basis.sub(&b.basis).unwrap().max_abs(),
        0.0,
        "engine {engine}: basis"
    );
}

/// Deterministic app configuration for the bit-exactness test: strict
/// round-robin with a channel capacity no queue can ever fill (the split
/// sheds to the next port under backpressure, which would make routing —
/// and therefore per-engine state — timing-dependent), and the sync gate
/// forced shut so commands flow (and are counted as skips) without
/// state-changing merges.
fn deterministic_cfg(recovery: &Path) -> AppConfig {
    let mut cfg = AppConfig::new(4, pca_cfg());
    cfg.split = SplitStrategy::RoundRobin;
    cfg.sync = SyncStrategy::Ring;
    cfg.sync_period = Duration::from_millis(1);
    cfg.failure_aware_sync = true;
    cfg.liveness_timeout = Duration::from_millis(200);
    cfg.heartbeat_every = 64;
    cfg.channel_capacity = 200_000;
    cfg.recovery_dir = Some(recovery.to_path_buf());
    cfg.recovery_every = 500;
    cfg
}

struct RunOutcome {
    report: RunReport,
    eigs: Vec<EigenSystem>,
    merged: EigenSystem,
    reporting: usize,
}

fn run_once(faults: Option<&str>, dir: &Path) -> RunOutcome {
    let mut cfg = deterministic_cfg(dir);
    if let Some(spec) = faults {
        cfg.faults = Some(normalize_fault_targets(FaultPlan::parse(spec).unwrap()));
    }
    let (g, h) = ParallelPcaApp::build_with_gate(&cfg, seeded_source(77), Some(u64::MAX));
    let report = Engine::run(g);
    let eigs: Vec<EigenSystem> = h
        .engine_states
        .iter()
        .map(|s| s.lock().full_eigensystem().expect("initialized").clone())
        .collect();
    let merged = h.hub.merged_estimate().expect("merged estimate");
    let reporting = h.hub.engines_reporting();
    RunOutcome {
        report,
        eigs,
        merged,
        reporting,
    }
}

#[test]
fn panicked_engine_restarts_from_snapshot_and_matches_fault_free_run() {
    let clean_dir = tmp_dir("clean");
    let fault_dir = tmp_dir("faulted");

    let clean = run_once(None, &clean_dir);
    let faulted = run_once(Some("panic@engine1:5000"), &fault_dir);

    // (a) Zero data-tuple loss outside the declared fault window: the
    // injected panic fires after its tuple is fully processed, so both
    // runs deliver every tuple exactly once.
    assert_eq!(clean.report.tuples_in_matching("pca-"), N_TUPLES);
    assert_eq!(faulted.report.tuples_in_matching("pca-"), N_TUPLES);

    // (c) The counters are visible in the run report.
    assert_eq!(clean.report.total_restarts(), 0);
    assert_eq!(faulted.report.total_restarts(), 1);
    assert_eq!(op_snapshot(&faulted.report, "pca-1").restarts, 1);
    assert_eq!(
        clean.report.total_quarantined(),
        NAN_SEQS.len() as u64,
        "every injected NaN is quarantined, none reach the eigensystem"
    );
    assert_eq!(faulted.report.total_quarantined(), NAN_SEQS.len() as u64);
    assert!(
        clean.report.total_sync_skips() > 0,
        "the forced-shut gate must count its skips"
    );
    assert!(faulted.report.total_sync_skips() > 0);

    // (b) The restarted engine rehydrated from its recovery snapshot and
    // replayed to the same state: every engine — including pca-1, which
    // died at tuple 5000 and resumed from disk — is *bit-identical* to
    // the fault-free run, which puts the merged eigensystems well within
    // the 1e-6 subspace-affinity bar.
    assert_eq!(clean.reporting, 4);
    assert_eq!(faulted.reporting, 4);
    for (i, (a, b)) in clean.eigs.iter().zip(&faulted.eigs).enumerate() {
        assert_eig_bits_equal(i, a, b);
    }
    let dist = subspace_distance(&clean.merged.basis, &faulted.merged.basis).unwrap();
    assert!(dist < 1e-6, "merged subspace distance {dist}");

    std::fs::remove_dir_all(clean_dir).ok();
    std::fs::remove_dir_all(fault_dir).ok();
}

#[test]
fn killed_pe_rehydrates_from_its_manifest_and_matches_fault_free_run() {
    // The whole-PE variant of the restart bar: `kill-pe@engine1:5000`
    // (normalized to pca-1) tears down the entire processing element after
    // its 5000th delivered tuple — well past warm-up, so the teardown
    // manifest carries a full eigensystem. The supervisor rebuilds the PE,
    // reconnects its frame channels, and rehydrates every member from the
    // per-PE snapshot manifest under `<recovery>/pe`; the run must finish
    // bit-identical to the fault-free one.
    let clean_dir = tmp_dir("pe_clean");
    let fault_dir = tmp_dir("pe_faulted");

    let clean = run_once(None, &clean_dir);
    let faulted = run_once(Some("kill-pe@engine1:5000"), &fault_dir);

    // No tuple lost or duplicated across the PE teardown.
    assert_eq!(clean.report.tuples_in_matching("pca-"), N_TUPLES);
    assert_eq!(faulted.report.tuples_in_matching("pca-"), N_TUPLES);

    // The restart is counted at the PE level, not the operator level.
    assert_eq!(clean.report.total_pe_restarts(), 0);
    assert!(faulted.report.total_pe_restarts() > 0);
    assert!(op_snapshot(&faulted.report, "pca-1").pe_restarts >= 1);
    assert_eq!(
        op_snapshot(&faulted.report, "pca-1").restarts,
        0,
        "a whole-PE kill must not also count an operator restart"
    );

    // Recovery wrote a consistent per-PE manifest set on disk.
    let manifests = std::fs::read_dir(fault_dir.join("pe"))
        .expect("PE checkpoint directory exists")
        .filter_map(|e| e.ok())
        .filter(|e| e.file_name().to_string_lossy().ends_with(".manifest"))
        .count();
    assert!(manifests >= 1, "the killed PE left a snapshot manifest");

    // Every engine — including the one whose PE died and was rehydrated
    // from the manifest — finishes bit-identical to the fault-free run.
    assert_eq!(clean.reporting, 4);
    assert_eq!(faulted.reporting, 4);
    for (i, (a, b)) in clean.eigs.iter().zip(&faulted.eigs).enumerate() {
        assert_eig_bits_equal(i, a, b);
    }
    let dist = subspace_distance(&clean.merged.basis, &faulted.merged.basis).unwrap();
    assert!(dist < 1e-6, "merged subspace distance {dist}");

    std::fs::remove_dir_all(clean_dir).ok();
    std::fs::remove_dir_all(fault_dir).ok();
}

#[test]
fn ring_survives_a_killed_engine_and_still_converges() {
    // No recovery directory: engine 1's recover() declines and the
    // supervisor finishes it — a true crash. The failure-aware controller
    // must notice the silence, skip it as a sender, re-close the ring
    // around it, and let the survivors converge.
    let mut cfg = AppConfig::new(4, pca_cfg());
    cfg.split = SplitStrategy::RoundRobin;
    cfg.sync = SyncStrategy::Ring;
    cfg.sync_period = Duration::from_millis(1);
    cfg.failure_aware_sync = true;
    cfg.liveness_timeout = Duration::from_millis(30);
    cfg.heartbeat_every = 16;
    cfg.channel_capacity = 200_000;
    cfg.faults = Some(normalize_fault_targets(
        FaultPlan::parse("panic@engine1:500").unwrap(),
    ));

    // Rate-limit the stream so the run outlives the liveness timeout by a
    // wide margin on any machine: ~160 ms wall clock, with the victim
    // dying ~8 ms in.
    let w = PlantedSubspace::new(D, 2, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(78)));
    let source = Box::new(
        GeneratorSource::new(move |_| Some((w.sample(&mut *rng.lock()), None)))
            .with_max_tuples(N_TUPLES)
            .with_rate(250_000.0),
    );

    let (g, h) = ParallelPcaApp::build(&cfg, source);
    let report = Engine::run(g);

    // The run completed (no wedge) and even the corpse reported its
    // state-at-death through on_finish.
    assert_eq!(h.hub.engines_reporting(), 4);
    assert_eq!(
        op_snapshot(&report, "pca-1").restarts,
        0,
        "without a recovery snapshot the engine must not restart"
    );
    // The survivors kept every tuple routed to them; only engine 1's
    // share after its death is lost (the declared fault window).
    let survivors: u64 = [0usize, 2, 3]
        .iter()
        .map(|i| op_snapshot(&report, &format!("pca-{i}")).tuples_in)
        .sum();
    assert_eq!(survivors, 3 * (N_TUPLES / 4));

    // The controller observed the death: dead-sender ticks were skipped
    // and counted.
    assert!(
        op_snapshot(&report, "sync-controller").sync_skips > 0,
        "controller must skip the dead engine"
    );

    // Three live engines with ring synchronization still converge to the
    // planted subspace.
    let merged = h.hub.merged_estimate().unwrap();
    let truth = PlantedSubspace::new(D, 2, 0.05);
    let dist = subspace_distance(&merged.basis, truth.basis()).unwrap();
    assert!(dist < 0.3, "merged distance {dist}");
}
