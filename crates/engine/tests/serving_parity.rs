//! `/metrics` ↔ CLI fault-summary parity (ISSUE 7 satellite).
//!
//! The CLI's fault summary prints `report.total_restarts()`,
//! `total_pe_restarts()`, `total_quarantined()`, `total_sync_skips()`,
//! `total_io_faults()`, `total_quarantined_snapshots()` and
//! `total_checkpoint_skips()` verbatim. `/metrics` exposes the same
//! counters (mirrored into [`ServeShared`] via
//! [`FaultCounters::from_report`]). This test drives a real engine run
//! that exercises every counter — an injected panic (restart), NaN
//! observations (quarantine), a forced-shut independence gate (sync
//! skips), failing fsyncs (storage faults + checkpoint skips) —
//! publishes eigensystem epochs into the store along the way, then
//! scrapes `/metrics` and asserts the served values are identical to the
//! report totals.

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use spca_core::PcaConfig;
use spca_engine::{
    normalize_fault_targets, AppConfig, EigenQueryHandler, EpochStore, FaultCounters,
    ParallelPcaApp, ServeShared, SyncStrategy,
};
use spca_spectra::PlantedSubspace;
use spca_streams::ops::http_server::{HttpServer, ServerConfig};
use spca_streams::ops::{GeneratorSource, SplitStrategy};
use spca_streams::{Engine, FaultPlan, Operator};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const D: usize = 12;
const N_TUPLES: u64 = 12_000;
const NAN_SEQS: [u64; 5] = [100, 501, 1202, 4003, 9004];

fn seeded_source() -> Box<dyn Operator> {
    let w = PlantedSubspace::new(D, 2, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(11)));
    Box::new(
        GeneratorSource::new(move |seq| {
            let v = w.sample(&mut *rng.lock());
            if NAN_SEQS.contains(&seq) {
                Some((vec![f64::NAN; D], None))
            } else {
                Some((v, None))
            }
        })
        .with_max_tuples(N_TUPLES),
    )
}

/// Scrapes one `spca_<name> <value>` line out of a `/metrics` body.
fn metric(body: &str, name: &str) -> u64 {
    let prefix = format!("{name} ");
    body.lines()
        .find_map(|l| l.strip_prefix(&prefix))
        .unwrap_or_else(|| panic!("metric {name} missing from:\n{body}"))
        .trim()
        .parse()
        .unwrap_or_else(|_| panic!("metric {name} is not an integer"))
}

#[test]
fn metrics_endpoint_matches_cli_fault_summary_values() {
    let recovery = std::env::temp_dir().join(format!("spca_parity_{}", std::process::id()));
    std::fs::remove_dir_all(&recovery).ok();

    let store = Arc::new(EpochStore::new());
    let mut cfg = AppConfig::new(2, PcaConfig::new(D, 2).with_memory(300).with_init_size(20));
    cfg.split = SplitStrategy::RoundRobin;
    cfg.sync = SyncStrategy::Ring;
    cfg.sync_period = Duration::from_millis(1);
    cfg.channel_capacity = 100_000;
    cfg.recovery_dir = Some(recovery.clone());
    cfg.recovery_every = 500;
    // io-fsync-err makes every checkpoint fsync fail, so the storage
    // counters (io faults, checkpoint skips) are exercised too.
    cfg.faults = Some(normalize_fault_targets(
        FaultPlan::parse("panic@engine1:2000,io-fsync-err").unwrap(),
    ));
    cfg.epoch_store = Some(Arc::clone(&store));
    cfg.publish_every = 64;

    // Gate forced shut: sync commands flow and are counted as skips.
    let (g, _h) = ParallelPcaApp::build_with_gate(&cfg, seeded_source(), Some(u64::MAX));
    let report = Engine::run(g);

    // The run must have exercised all the counters we claim parity for,
    // and published epochs while doing so.
    assert!(store.epoch() > 0, "operators must publish into the store");
    assert_eq!(report.total_restarts(), 1);
    assert_eq!(report.total_quarantined(), NAN_SEQS.len() as u64);
    assert!(report.total_sync_skips() > 0);
    assert!(
        report.total_checkpoint_skips() > 0,
        "failing fsyncs must surface as skipped checkpoints"
    );
    assert!(report.total_io_faults() > 0);

    // Summing live per-op snapshots gives the same totals the report
    // aggregates — the in-flight mirroring path agrees with the final one.
    assert_eq!(
        FaultCounters::from_op_snapshots(&report.ops),
        FaultCounters::from_report(&report)
    );

    let shared = Arc::new(ServeShared::new(Arc::clone(&store)));
    shared.set_counters(FaultCounters::from_report(&report));
    let server = {
        let shared = Arc::clone(&shared);
        HttpServer::start("127.0.0.1:0", ServerConfig::default(), move |_| {
            EigenQueryHandler::new(Arc::clone(&shared))
        })
        .unwrap()
    };

    let mut conn = TcpStream::connect(server.local_addr()).unwrap();
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    conn.read_to_string(&mut response).unwrap();
    drop(conn);
    server.shutdown();
    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let body = response.split("\r\n\r\n").nth(1).unwrap();

    // The CLI fault summary prints exactly these four report totals; the
    // endpoint must serve identical values.
    assert_eq!(metric(body, "spca_restarts"), report.total_restarts());
    assert_eq!(metric(body, "spca_pe_restarts"), report.total_pe_restarts());
    assert_eq!(metric(body, "spca_quarantined"), report.total_quarantined());
    assert_eq!(metric(body, "spca_sync_skips"), report.total_sync_skips());
    assert_eq!(metric(body, "spca_io_faults"), report.total_io_faults());
    assert_eq!(
        metric(body, "spca_quarantined_snapshots"),
        report.total_quarantined_snapshots()
    );
    assert_eq!(
        metric(body, "spca_checkpoint_skips"),
        report.total_checkpoint_skips()
    );
    assert_eq!(metric(body, "spca_epoch"), store.epoch());

    std::fs::remove_dir_all(&recovery).ok();
}
