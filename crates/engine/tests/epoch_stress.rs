//! Concurrent epoch-publishing stress test (ISSUE 7 satellite): one
//! writer publishing at full rate, N reader threads continuously pinning
//! and querying. Every observed snapshot must be internally consistent —
//! the epoch sequence each reader observes is monotonic, and the
//! projection of a fixed probe vector through the pinned snapshot is
//! bit-identical to an offline computation against the eigensystem that
//! was published under that same epoch.

use spca_core::{EigenSystem, PcaConfig, QueryWorkspace, RobustPca};
use spca_engine::EpochStore;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

const DIM: usize = 24;
const P: usize = 3;
const N_SOURCES: usize = 32;
const N_READERS: usize = 4;
const N_PUBLISHES: u64 = 3000;

fn fitted_eig(seed: u64) -> EigenSystem {
    let mut pca = RobustPca::new(PcaConfig::new(DIM, P));
    for i in 0..60u64 {
        let t = (seed * 97 + i) as f64;
        let x: Vec<f64> = (0..DIM)
            .map(|j| (t * 0.31 + j as f64 * 0.7).sin() * (1.0 + seed as f64 * 0.1))
            .collect();
        pca.update(&x).unwrap();
    }
    pca.full_eigensystem().unwrap().clone()
}

#[test]
fn concurrent_publish_readers_see_consistent_epochs() {
    let store = Arc::new(EpochStore::new());
    let probe: Vec<f64> = (0..DIM).map(|j| (j as f64 * 0.13).cos() * 2.0).collect();

    // Distinct source eigensystems cycled by the writer; epoch e serves
    // sources[(e - 1) % N_SOURCES], so the expected projection for any
    // epoch is known offline without synchronizing with the writer.
    let sources: Vec<EigenSystem> = (0..N_SOURCES as u64).map(fitted_eig).collect();
    let expected: Vec<Vec<f64>> = sources
        .iter()
        .map(|eig| {
            let mut ws = QueryWorkspace::new();
            ws.project(eig, P, &probe).unwrap().to_vec()
        })
        .collect();

    let done = Arc::new(AtomicBool::new(false));
    let verified = Arc::new(AtomicU64::new(0));

    let readers: Vec<_> = (0..N_READERS)
        .map(|_| {
            let store = Arc::clone(&store);
            let probe = probe.clone();
            let expected = expected.clone();
            let done = Arc::clone(&done);
            let verified = Arc::clone(&verified);
            std::thread::spawn(move || {
                let mut reader = store.reader().expect("reader slot");
                let mut ws = QueryWorkspace::new();
                let mut last_epoch = 0u64;
                let mut checked = 0u64;
                while !done.load(Ordering::Relaxed) || checked == 0 {
                    let Some(pinned) = reader.pin() else {
                        std::thread::yield_now();
                        continue;
                    };
                    let epoch = pinned.epoch;
                    assert!(
                        epoch >= last_epoch,
                        "epoch went backwards: {last_epoch} -> {epoch}"
                    );
                    last_epoch = epoch;
                    let got = ws.project(&pinned.eig, pinned.p, &probe).unwrap();
                    let want = &expected[((epoch - 1) % N_SOURCES as u64) as usize];
                    assert_eq!(
                        got, want,
                        "projection at epoch {epoch} not bit-identical to offline"
                    );
                    checked += 1;
                    drop(pinned);
                }
                verified.fetch_add(checked, Ordering::Relaxed);
            })
        })
        .collect();

    // Writer: publish at full rate, recycling buffers through the store.
    for i in 0..N_PUBLISHES {
        let src = &sources[(i % N_SOURCES as u64) as usize];
        let mut buf = store.checkout();
        buf.eig.copy_from(src);
        buf.p = P;
        let epoch = store.publish(buf);
        assert_eq!(epoch, i + 1, "single-writer epochs must be sequential");
    }
    done.store(true, Ordering::Relaxed);

    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(store.epoch(), N_PUBLISHES);
    assert!(
        verified.load(Ordering::Relaxed) >= N_READERS as u64,
        "every reader must verify at least one snapshot"
    );
}
