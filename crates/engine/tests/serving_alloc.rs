//! Proves that serving queries does not put allocations on the update
//! thread (ISSUE 7 satellite).
//!
//! A thread-filtered counting allocator tracks only the thread marked as
//! the "update thread" (the one running `RobustPca::update` and epoch
//! publishes). HTTP worker threads, client threads, and the accept path
//! allocate freely without touching the counter. The publish path uses
//! the real serving wiring: a prewarmed snapshot pool plus
//! `try_checkout`, which sheds a publish (instead of allocating) when
//! stalled readers have drained the pool. After warm-up — the
//! estimator's workspaces grown — a stretch of updates-plus-publishes
//! under full concurrent query load must perform zero heap allocations
//! on the update thread.
//!
//! This file must contain exactly one `#[test]`: the filter makes the
//! counter robust to sibling threads, but the tracked flag is per-file
//! global state all the same.

use spca_core::{PcaConfig, RobustPca};
use spca_engine::{EigenQueryHandler, EpochStore, ServeShared};
use spca_streams::ops::http_server::{HttpServer, ServerConfig};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

struct ThreadFilteredAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    // const-initialized TLS: reading it never allocates, so it is safe
    // to consult from inside the global allocator.
    static TRACKED: Cell<bool> = const { Cell::new(false) };
}

fn count_if_tracked() {
    // try_with: TLS may be unavailable during thread teardown.
    if TRACKED.try_with(Cell::get).unwrap_or(false) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
    }
}

unsafe impl GlobalAlloc for ThreadFilteredAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        count_if_tracked();
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        count_if_tracked();
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        count_if_tracked();
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static GLOBAL: ThreadFilteredAlloc = ThreadFilteredAlloc;

/// Deterministic pseudo-random stream; must not allocate.
fn lcg_normal_ish(state: &mut u64) -> f64 {
    let mut s = 0.0;
    for _ in 0..4 {
        *state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        s += (*state >> 11) as f64 / (1u64 << 53) as f64 - 0.5;
    }
    s * 2.0
}

const DIM: usize = 64;
const P: usize = 4;

#[test]
fn serving_requests_do_not_allocate_on_the_update_thread() {
    let store = Arc::new(EpochStore::new());
    // Same prewarm `StreamingPcaOp::with_epoch_store` performs at build
    // time: boxes sized for the full d × (p+q) eigensystem, so after
    // this the publish path never allocates.
    let cfg = PcaConfig::new(DIM, P);
    store.prewarm(
        spca_engine::epoch::PREWARM_PER_WRITER,
        cfg.dim,
        cfg.p_total(),
    );
    let shared = Arc::new(ServeShared::new(Arc::clone(&store)));
    let server = {
        let shared = Arc::clone(&shared);
        HttpServer::start("127.0.0.1:0", ServerConfig::default(), move |_| {
            EigenQueryHandler::new(Arc::clone(&shared))
        })
        .unwrap()
    };
    let addr = server.local_addr();

    // Client threads hammer /project and /score for the whole test.
    let stop = Arc::new(AtomicBool::new(false));
    let obs_csv: String = (0..DIM)
        .map(|j| format!("{:.3}", (j as f64 * 0.17).sin()))
        .collect::<Vec<_>>()
        .join(",");
    let clients: Vec<_> = (0..3)
        .map(|i| {
            let stop = Arc::clone(&stop);
            let obs_csv = obs_csv.clone();
            std::thread::spawn(move || {
                let path = if i % 2 == 0 { "/project" } else { "/score" };
                let mut buf = Vec::new();
                while !stop.load(Ordering::Relaxed) {
                    let Ok(mut conn) = TcpStream::connect(addr) else {
                        continue;
                    };
                    let req = format!(
                        "POST {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{obs_csv}",
                        obs_csv.len()
                    );
                    if conn.write_all(req.as_bytes()).is_err() {
                        continue;
                    }
                    buf.clear();
                    let _ = conn.read_to_end(&mut buf);
                }
            })
        })
        .collect();

    // The update thread: warm up, then a measured allocation-free run.
    let update = {
        let store = Arc::clone(&store);
        std::thread::spawn(move || {
            TRACKED.with(|t| t.set(true));
            let mut pca = RobustPca::new(PcaConfig::new(DIM, P));
            let mut state = 0x5eed_cafe_u64;
            let mut x = vec![0.0; DIM];
            let update_and_publish = |pca: &mut RobustPca, x: &mut Vec<f64>, state: &mut u64| {
                for xi in x.iter_mut() {
                    *xi = lcg_normal_ish(state);
                }
                pca.update(x).unwrap();
                if let Some(eig) = pca.full_eigensystem() {
                    // Shed the publish if stalled readers drained the
                    // pool — exactly what `publish_epoch` does.
                    if let Some(mut buf) = store.try_checkout() {
                        buf.eig.copy_from(eig);
                        buf.p = P;
                        store.publish(buf);
                    }
                }
            };
            // Warm-up: grow estimator workspaces and size the pooled
            // snapshot buffers, with queries already in flight.
            for _ in 0..400 {
                update_and_publish(&mut pca, &mut x, &mut state);
            }
            // Measured stretch under full serving load.
            ALLOCS.store(0, Ordering::SeqCst);
            for _ in 0..2000 {
                update_and_publish(&mut pca, &mut x, &mut state);
            }
            let allocs = ALLOCS.load(Ordering::SeqCst);
            TRACKED.with(|t| t.set(false));
            allocs
        })
    };

    let allocs = update.join().unwrap();
    stop.store(true, Ordering::Relaxed);
    for c in clients {
        c.join().unwrap();
    }
    server.shutdown();

    assert_eq!(
        allocs, 0,
        "update thread allocated {allocs} times during steady-state \
         update + epoch publishing with serving enabled"
    );
}
