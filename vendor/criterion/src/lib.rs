//! Offline, dependency-free subset of the `criterion` 0.5 API.
//!
//! The workspace builds in environments with no crates.io access, so the
//! benchmark surface it uses is vendored here. Unlike the other vendored
//! stubs this one must *really measure*: its numbers are quoted in the
//! README performance section and dumped to `BENCH_hotpath.json`.
//!
//! Methodology (simplified from real criterion, honest about what it is):
//! a short warm-up estimates the per-iteration cost, each sample then runs
//! enough iterations to amortize timer overhead (capped so heavy
//! end-to-end benches still finish), and the reported figure is the
//! **median** ns/iter over `sample_size` samples — robust to scheduler
//! noise, no outlier modeling.
//!
//! Set `CRITERION_JSON` to a file path to append one JSON line per
//! benchmark (`{"group":…,"id":…,"median_ns":…,"samples":…}`), which is
//! how `BENCH_hotpath.json` is produced.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

/// Re-export of the standard optimization barrier, for parity with
/// `criterion::black_box`.
pub use std::hint::black_box;

/// Target iterations-per-sample time. Samples shorter than this are run
/// multiple times per timing window to amortize timer overhead.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(20);
/// Warm-up budget before sampling starts.
const WARM_UP_TIME: Duration = Duration::from_millis(60);

/// Top-level benchmark driver, handed to every `criterion_group!` target.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // `cargo bench -- <filter>` passes the filter as the first free
        // argument; harness flags like `--bench` are ignored.
        let filter = std::env::args().skip(1).find(|a| !a.starts_with('-'));
        Criterion { filter }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 20,
            throughput: None,
        }
    }
}

/// Units processed per iteration, used to report derived throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of logical elements (tuples, rows, …) per iteration.
    Elements(u64),
    /// Number of bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from a single parameter value.
    pub fn from_parameter<P: Display>(p: P) -> Self {
        BenchmarkId { id: p.to_string() }
    }

    /// An id with a function-name prefix and a parameter value.
    pub fn new<S: Into<String>, P: Display>(name: S, p: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), p),
        }
    }
}

/// A group of benchmarks sharing sample-size and throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timing samples to collect per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares per-iteration throughput for derived rates.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs a benchmark with an explicit input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.id, |b| f(b, input));
        self
    }

    /// Runs a benchmark identified by a plain name.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(id, |b| f(b));
        self
    }

    /// Finishes the group (reporting happens eagerly; this is for API
    /// parity).
    pub fn finish(&mut self) {}

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let Some(median_ns) = bencher.median_ns() else {
            println!("bench: {full:<50} (no measurement)");
            return;
        };
        let mut line = format!(
            "bench: {full:<50} median {:>12.1} ns/iter ({} samples)",
            median_ns, self.sample_size
        );
        if let Some(Throughput::Elements(e)) = self.throughput {
            let rate = e as f64 * 1e9 / median_ns;
            line.push_str(&format!("  {rate:>12.0} elem/s"));
        }
        println!("{line}");
        write_json_line(&self.name, id, median_ns, self.sample_size);
    }
}

fn write_json_line(group: &str, id: &str, median_ns: f64, samples: usize) {
    let Ok(path) = std::env::var("CRITERION_JSON") else {
        return;
    };
    if path.is_empty() {
        return;
    }
    if let Ok(mut fh) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
    {
        let _ = writeln!(
            fh,
            "{{\"group\":\"{group}\",\"id\":\"{id}\",\"median_ns\":{median_ns:.1},\"samples\":{samples}}}"
        );
    }
}

/// Timing harness passed to each benchmark closure.
pub struct Bencher {
    samples_ns: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, collecting `sample_size` samples of enough
    /// iterations each to amortize timer overhead.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the budget elapses, estimating cost/iter.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        loop {
            black_box(f());
            warm_iters += 1;
            if warm_start.elapsed() >= WARM_UP_TIME {
                break;
            }
        }
        let est_per_iter = warm_start.elapsed().as_secs_f64() / warm_iters as f64;

        // Iterations per sample: hit the target sample time, but never
        // more than one extra order of magnitude for slow benches.
        let iters = if est_per_iter <= 0.0 {
            1_000
        } else {
            ((TARGET_SAMPLE_TIME.as_secs_f64() / est_per_iter).round() as u64).clamp(1, 1_000_000)
        };

        self.samples_ns.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            let dt = t0.elapsed();
            self.samples_ns.push(dt.as_nanos() as f64 / iters as f64);
        }
    }

    fn median_ns(&self) -> Option<f64> {
        if self.samples_ns.is_empty() {
            return None;
        }
        let mut s = self.samples_ns.clone();
        s.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Some(s[s.len() / 2])
    }
}

/// Declares a benchmark group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_cheap_operation() {
        let mut c = Criterion { filter: None };
        let mut g = c.benchmark_group("stub_test");
        g.sample_size(5);
        let mut ran = false;
        g.bench_function("noop_sum", |b| {
            ran = true;
            b.iter(|| (0..100u64).sum::<u64>())
        });
        g.finish();
        assert!(ran);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            filter: Some("only_this".to_string()),
        };
        let mut g = c.benchmark_group("grp");
        let mut ran = false;
        g.bench_function("other", |b| {
            ran = true;
            b.iter(|| 1u32)
        });
        assert!(!ran);
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::from_parameter(250).id, "250");
        assert_eq!(BenchmarkId::new("qr", 16).id, "qr/16");
    }

    #[test]
    fn median_is_robust_to_one_outlier() {
        let b = Bencher {
            samples_ns: vec![10.0, 11.0, 12.0, 11.5, 400.0],
            sample_size: 5,
        };
        let m = b.median_ns().unwrap();
        assert!((11.0..=12.0).contains(&m), "median {m}");
    }
}
