//! Offline, dependency-free subset of the `parking_lot` 0.12 API.
//!
//! The workspace uses `parking_lot::Mutex` for its non-poisoning lock with
//! `is_locked`/`try_lock -> Option`. This vendored version wraps
//! `std::sync::Mutex` and discards poison (parking_lot semantics: a panic
//! while holding the lock does not poison it).

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with parking_lot semantics (no poisoning,
/// `Option`-returning `try_lock`).
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`] / [`Mutex::try_lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `t`.
    pub const fn new(t: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(t),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Never poisons.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = match self.inner.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        MutexGuard { inner: guard }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: p.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns `true` if the lock is currently held by any thread,
    /// including the calling one.
    pub fn is_locked(&self) -> bool {
        match self.inner.try_lock() {
            Ok(_guard) => false,
            Err(std::sync::TryLockError::WouldBlock) => true,
            Err(std::sync::TryLockError::Poisoned(_)) => false,
        }
    }

    /// Returns a mutable reference to the protected value (no locking
    /// needed: `&mut self` proves exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(t) => t,
            Err(p) => p.into_inner(),
        }
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 41;
        assert_eq!(*m.lock(), 42);
    }

    #[test]
    fn try_lock_contended_returns_none() {
        let m = Mutex::new(0);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        assert!(m.is_locked());
        drop(g);
        assert!(!m.is_locked());
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn panic_does_not_poison() {
        let m = Arc::new(Mutex::new(0u32));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        *m.lock() = 5;
        assert_eq!(*m.lock(), 5);
    }

    #[test]
    fn shared_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let mut handles = Vec::new();
        for _ in 0..4 {
            let m = Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for _ in 0..1000 {
                    *m.lock() += 1;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
