//! Offline, dependency-free subset of the `crossbeam` 0.8 API.
//!
//! The workspace builds in environments with no crates.io access, so the two
//! crossbeam facilities it actually uses are vendored here:
//!
//! * [`scope`] — scoped threads, implemented on `std::thread::scope`. The
//!   one observable difference: a panicking child thread propagates the
//!   panic at scope exit instead of returning `Err`, which is equivalent
//!   for the workspace's `.expect(...)` call sites.
//! * [`channel`] — MPMC channels with bounded backpressure plus a polling
//!   [`channel::Select`] supporting `select_timeout`, which is the only
//!   selection entry point the dataflow engine uses.

use std::any::Any;

/// Result type of [`scope`], mirroring `std::thread::Result`.
pub type ThreadResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A scope handle whose `spawn` matches crossbeam's closure shape
/// (`FnOnce(&Scope) -> T`; the workspace always ignores the argument, so the
/// parameter is plain `()` here).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

/// Join handle of a scoped thread.
pub struct ScopedJoinHandle<'scope, T> {
    inner: std::thread::ScopedJoinHandle<'scope, T>,
}

impl<'scope, T> ScopedJoinHandle<'scope, T> {
    /// Waits for the thread to finish, returning its result (Err on panic).
    pub fn join(self) -> ThreadResult<T> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a scoped thread. The closure receives a placeholder argument
    /// in place of crossbeam's nested `&Scope` (unused by this workspace).
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(()) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        ScopedJoinHandle {
            inner: self.inner.spawn(move || f(())),
        }
    }
}

/// Creates a scope for spawning threads that may borrow from the caller's
/// stack; all spawned threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> ThreadResult<R>
where
    F: for<'a, 'scope> FnOnce(&'a Scope<'scope, 'env>) -> R,
{
    Ok(std::thread::scope(|s| f(&Scope { inner: s })))
}

pub mod channel {
    //! MPMC channels with bounded capacity and a polling `Select`.

    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Error returned by `send` when every receiver is gone; carries the
    /// unsent value.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    /// Error returned by `recv` when the channel is empty and every sender
    /// is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty.
        Empty,
        /// The channel is empty and all senders have disconnected.
        Disconnected,
    }

    /// Error returned by `Select::select_timeout` on timeout.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct SelectTimeoutError;

    fn new_channel<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    /// Creates a bounded channel (capacity 0 is treated as 1: the engine
    /// never requests rendezvous semantics).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        new_channel(Some(cap.max(1)))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        new_channel(None)
    }

    impl<T> Sender<T> {
        /// Blocking send with backpressure. Fails only when every receiver
        /// has been dropped.
        pub fn send(&self, t: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(t));
                }
                let full = st.cap.map(|c| st.queue.len() >= c).unwrap_or(false);
                if !full {
                    st.queue.push_back(t);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Current queue depth.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True if the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// True if a bounded channel is at capacity (always false for
        /// unbounded channels).
        pub fn is_full(&self) -> bool {
            let st = self.shared.state.lock().unwrap();
            st.cap.map(|c| st.queue.len() >= c).unwrap_or(false)
        }
    }

    impl<T> Receiver<T> {
        /// Blocking receive; drains remaining queued values even after all
        /// senders disconnect.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(t) = st.queue.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(t);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Non-blocking receive.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(t) = st.queue.pop_front() {
                self.shared.not_full.notify_one();
                return Ok(t);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Current queue depth.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True if the queue is empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// Poll state for `Select`: ready when a value is queued or the
        /// channel can never deliver again.
        fn select_ready(&self) -> bool {
            let st = self.shared.state.lock().unwrap();
            !st.queue.is_empty() || st.senders == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Type-erased handle a `Select` polls.
    trait SelectHandle {
        fn select_ready(&self) -> bool;
    }

    impl<T> SelectHandle for Receiver<T> {
        fn select_ready(&self) -> bool {
            Receiver::select_ready(self)
        }
    }

    /// A polling multiplexer over receive operations.
    ///
    /// Crossbeam's `Select` parks on channel events; this vendored version
    /// polls at a fine interval instead, which is indistinguishable at the
    /// 20 ms timeouts the engine's scheduler loop uses.
    pub struct Select<'a> {
        handles: Vec<&'a dyn SelectHandle>,
    }

    impl<'a> Default for Select<'a> {
        fn default() -> Self {
            Self::new()
        }
    }

    impl<'a> Select<'a> {
        /// Creates an empty selector.
        pub fn new() -> Self {
            Select {
                handles: Vec::new(),
            }
        }

        /// Registers a receive operation; returns its operation index.
        pub fn recv<T>(&mut self, r: &'a Receiver<T>) -> usize {
            self.handles.push(r);
            self.handles.len() - 1
        }

        /// Waits up to `timeout` for any registered operation to become
        /// ready (a queued value, or a disconnected channel).
        ///
        /// Like crossbeam, selection among simultaneously-ready operations
        /// is fair: the scan starts from a rotating offset, so one
        /// always-ready channel cannot starve the others (callers rebuild
        /// `Select` per iteration, hence the process-wide rotor).
        pub fn select_timeout(
            &mut self,
            timeout: Duration,
        ) -> Result<SelectedOperation<'a>, SelectTimeoutError> {
            static ROTOR: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);
            let deadline = Instant::now() + timeout;
            let n = self.handles.len();
            if n == 0 {
                std::thread::sleep(timeout);
                return Err(SelectTimeoutError);
            }
            let start = ROTOR.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            loop {
                for k in 0..n {
                    let i = (start + k) % n;
                    if self.handles[i].select_ready() {
                        return Ok(SelectedOperation {
                            index: i,
                            _marker: std::marker::PhantomData,
                        });
                    }
                }
                if Instant::now() >= deadline {
                    return Err(SelectTimeoutError);
                }
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }

    /// A ready operation returned by `select_timeout`; complete it by
    /// calling [`SelectedOperation::recv`] on the matching receiver.
    pub struct SelectedOperation<'a> {
        index: usize,
        _marker: std::marker::PhantomData<&'a ()>,
    }

    impl<'a> SelectedOperation<'a> {
        /// The operation index assigned by `Select::recv`.
        pub fn index(&self) -> usize {
            self.index
        }

        /// Completes the receive on `r` (which must be the receiver that
        /// became ready). `Err` means the channel is disconnected.
        pub fn recv<T>(self, r: &Receiver<T>) -> Result<T, RecvError> {
            // A ready receiver either has a value or is disconnected; with
            // one consumer per receiver (the engine's PE loops) a queued
            // value cannot vanish between readiness and this call.
            r.try_recv().map_err(|_| RecvError)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, Select, TryRecvError};
    use std::time::Duration;

    #[test]
    fn scope_joins_and_returns() {
        let data = [1, 2, 3];
        let sum = super::scope(|s| {
            let h = s.spawn(|_| data.iter().sum::<i32>());
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(sum, 6);
    }

    #[test]
    fn bounded_backpressure_and_fifo() {
        let (tx, rx) = bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert!(tx.is_full());
        let sender = std::thread::spawn(move || tx.send(3).unwrap());
        assert_eq!(rx.recv().unwrap(), 1);
        sender.join().unwrap();
        assert_eq!(rx.recv().unwrap(), 2);
        assert_eq!(rx.recv().unwrap(), 3);
    }

    #[test]
    fn disconnect_detection() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.try_recv().unwrap(), 9);
        assert_eq!(rx.try_recv().unwrap_err(), TryRecvError::Disconnected);

        let (tx2, rx2) = unbounded::<u8>();
        drop(rx2);
        assert!(tx2.send(1).is_err());
    }

    #[test]
    fn select_picks_ready_channel() {
        let (tx_a, rx_a) = unbounded::<u8>();
        let (_tx_b, rx_b) = unbounded::<u8>();
        tx_a.send(7).unwrap();
        let mut sel = Select::new();
        sel.recv(&rx_a);
        sel.recv(&rx_b);
        let oper = sel.select_timeout(Duration::from_millis(100)).unwrap();
        assert_eq!(oper.index(), 0);
        assert_eq!(oper.recv(&rx_a).unwrap(), 7);
    }

    #[test]
    fn select_times_out_when_idle() {
        let (_tx, rx) = unbounded::<u8>();
        let mut sel = Select::new();
        sel.recv(&rx);
        assert!(sel.select_timeout(Duration::from_millis(10)).is_err());
    }

    #[test]
    fn select_reports_disconnect_as_ready() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        let mut sel = Select::new();
        sel.recv(&rx);
        let oper = sel.select_timeout(Duration::from_millis(50)).unwrap();
        assert!(oper.recv(&rx).is_err());
    }
}
