//! Offline, dependency-free subset of the `rand` 0.8 API.
//!
//! This workspace builds in environments with no crates.io access, so the
//! handful of `rand` features actually used — `Rng::gen`, `Rng::gen_range`,
//! `SeedableRng::seed_from_u64` and `rngs::StdRng` — are provided here as a
//! vendored drop-in. The generator is xoshiro256++ seeded through
//! splitmix64: deterministic, fast, and statistically strong enough for
//! test-data generation and Monte-Carlo workloads (it is the reference
//! construction from Blackman & Vigna). It is **not** cryptographically
//! secure, which matches how the workspace uses it.

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (high half of a 64-bit draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly from an `RngCore` ("standard"
/// distribution: `[0, 1)` for floats, uniform over all values for integers,
/// fair coin for `bool`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 high bits → uniform in [0, 1) with full double precision.
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: low bits of some generators are weaker.
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that `Rng::gen_range` accepts.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * f64::sample(rng)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    #[inline]
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + (hi - lo) * f64::sample(rng)
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (including unsized trait objects, matching `rand`'s bounds).
pub trait Rng: RngCore {
    /// Samples a value from the standard distribution of `T`.
    #[inline]
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via splitmix64).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn unit_floats_in_range_and_spread() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gen_range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let u = rng.gen_range(3usize..10);
            assert!((3..10).contains(&u));
            let i = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&i));
            let f = rng.gen_range(-1.0..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4500..5500).contains(&heads), "heads {heads}");
    }

    #[test]
    fn works_through_dyn_rngcore() {
        // The workspace bounds helpers as `R: Rng + ?Sized`.
        fn draw(rng: &mut dyn super::RngCore) -> f64 {
            rng.gen_range(-1.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(4);
        assert!(draw(&mut rng).abs() <= 1.0);
    }
}
