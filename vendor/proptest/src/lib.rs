//! Offline, dependency-free subset of the `proptest` 1.x API.
//!
//! The workspace builds in environments with no crates.io access, so the
//! property-testing surface it uses is vendored here: the `proptest!` /
//! `prop_assert*` / `prop_assume!` macros, range and tuple strategies,
//! `any::<T>()`, `proptest::collection::vec`, `prop_map` / `prop_flat_map`,
//! and `ProptestConfig::with_cases`.
//!
//! Differences from real proptest, deliberate for a vendored stub:
//! * no shrinking — a failing case reports its inputs (via the panic
//!   message) but is not minimized;
//! * cases are generated from a deterministic per-test RNG (seeded by a
//!   hash of the test's module path and name), so failures reproduce
//!   across runs without a persistence file.

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use rand::rngs::StdRng;
    use rand::Rng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { base: self, f }
        }

        /// Builds a dependent strategy from each generated value.
        fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S: Strategy,
            F: Fn(Self::Value) -> S,
        {
            FlatMap { base: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.base.generate(rng))
        }
    }

    /// Strategy returned by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);
    impl_tuple_strategy!(A, B, C, D, E, G, H);
    impl_tuple_strategy!(A, B, C, D, E, G, H, I);

    /// Types with a canonical "whole domain" strategy (see [`any`]).
    pub trait Arbitrary: Sized {
        /// Draws one value uniformly from the type's domain.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.gen()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut StdRng) -> f64 {
            // Finite, sign-symmetric, wide dynamic range; real proptest
            // also generates NaN/inf but no workspace test relies on that.
            let mag = rng.gen_range(-300.0..300.0);
            let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
            sign * 10f64.powf(mag / 10.0)
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.gen()
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    pub struct Any<A> {
        _marker: core::marker::PhantomData<A>,
    }

    impl<A: Arbitrary> Strategy for Any<A> {
        type Value = A;
        fn generate(&self, rng: &mut StdRng) -> A {
            A::arbitrary(rng)
        }
    }

    /// Strategy generating any value of `A`.
    pub fn any<A: Arbitrary>() -> Any<A> {
        Any {
            _marker: core::marker::PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`).

    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Permitted lengths for a generated collection (inclusive bounds).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty collection size range");
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = if self.size.lo == self.size.hi {
                self.size.lo
            } else {
                rng.gen_range(self.size.lo..=self.size.hi)
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size` (an exact `usize` or a range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod test_runner {
    //! Case execution: configuration, error plumbing, and the driver loop
    //! invoked by the `proptest!` macro expansion.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's inputs were rejected by `prop_assume!`.
        Reject(String),
        /// A `prop_assert*` failed.
        Fail(String),
    }

    impl TestCaseError {
        /// Builds a failure error.
        pub fn fail(msg: String) -> Self {
            TestCaseError::Fail(msg)
        }

        /// Builds a rejection error.
        pub fn reject(msg: &str) -> Self {
            TestCaseError::Reject(msg.to_string())
        }
    }

    fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs `f` until `cfg.cases` cases pass, panicking on the first
    /// failure. Rejected cases (`prop_assume!`) are retried with fresh
    /// inputs, up to a bounded attempt budget.
    pub fn run<F>(name: &str, cfg: Config, mut f: F)
    where
        F: FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    {
        let base = fnv1a(name);
        let max_attempts = (cfg.cases as u64).saturating_mul(10).max(100);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let mut attempt = 0u64;
        while passed < cfg.cases && attempt < max_attempts {
            let seed = base ^ attempt.wrapping_mul(0x9E3779B97F4A7C15);
            let mut rng = StdRng::seed_from_u64(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => rejected += 1,
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest property '{name}' failed at case seed {seed:#x} \
                     (attempt {attempt}): {msg}"
                ),
            }
            attempt += 1;
        }
        assert!(
            passed > 0,
            "proptest property '{name}': every input rejected \
             ({rejected} rejections in {attempt} attempts)"
        );
    }
}

pub mod prelude {
    //! Glob-import surface matching `use proptest::prelude::*`.

    pub use crate::strategy::{any, Arbitrary, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::test_runner::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests. Each `fn name(bindings...) { body }` item
/// becomes a `#[test]` that runs the body against generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::Config::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: munches `fn` items one at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr); $(#[$meta:meta])* fn $name:ident($($params:tt)*) $body:block $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::test_runner::Config = $cfg;
            let name = concat!(module_path!(), "::", stringify!($name));
            $crate::test_runner::run(name, cfg, |__pt_rng| {
                $crate::__proptest_bind!(__pt_rng; $body; $($params)*)
            });
        }
        $crate::__proptest_items!(($cfg); $($rest)*);
    };
    (($cfg:expr);) => {};
}

/// Implementation detail of [`proptest!`]: binds `pat in strategy`
/// parameters, then runs the body inside a `Result` context so
/// `prop_assert*` can early-return.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_bind {
    ($rng:ident; $body:block; $pat:pat in $strat:expr, $($rest:tt)*) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $crate::__proptest_bind!($rng; $body; $($rest)*)
    }};
    ($rng:ident; $body:block; $pat:pat in $strat:expr) => {{
        let $pat = $crate::strategy::Strategy::generate(&($strat), $rng);
        $body
        ::core::result::Result::Ok(())
    }};
    ($rng:ident; $body:block;) => {{
        $body
        ::core::result::Result::Ok(())
    }};
}

/// Asserts a condition inside a `proptest!` body, failing the case (not
/// aborting the process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts two expressions are equal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_a, __pt_b) = (&$a, &$b);
        if !(*__pt_a == *__pt_b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a),
                    stringify!($b),
                    __pt_a,
                    __pt_b
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (__pt_a, __pt_b) = (&$a, &$b);
        if !(*__pt_a == *__pt_b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n  {}",
                    stringify!($a),
                    stringify!($b),
                    __pt_a,
                    __pt_b,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Asserts two expressions are unequal inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__pt_a, __pt_b) = (&$a, &$b);
        if *__pt_a == *__pt_b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($a),
                stringify!($b),
                __pt_a
            )));
        }
    }};
}

/// Rejects the current case (retried with fresh inputs) when the
/// assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let x = (0.5f64..2.0).generate(&mut rng);
            assert!((0.5..2.0).contains(&x));
            let (a, b) = (1usize..4, any::<bool>()).generate(&mut rng);
            assert!((1..4).contains(&a));
            let _ = b;
            let v = crate::collection::vec(-1.0f64..1.0, 3..7).generate(&mut rng);
            assert!((3..7).contains(&v.len()));
            let exact = crate::collection::vec(0u8..5, 4usize).generate(&mut rng);
            assert_eq!(exact.len(), 4);
        }
    }

    #[test]
    fn flat_map_links_dimensions() {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let strat = (1usize..5).prop_flat_map(|n| {
            crate::collection::vec(0.0f64..1.0, n * 2).prop_map(move |v| (n, v))
        });
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..100 {
            let (n, v) = strat.generate(&mut rng);
            assert_eq!(v.len(), n * 2);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_binds_and_asserts(x in 0.0f64..1.0, n in 1usize..10) {
            prop_assert!((0.0..1.0).contains(&x), "x out of range: {x}");
            prop_assert_eq!(n, n);
            prop_assert_ne!(n, n + 1);
        }

        #[test]
        fn assume_rejects_without_failing(n in 0usize..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }

        #[test]
        fn pattern_bindings_work((a, b) in (0u8..10, 0u8..10), mut acc in 0u32..1) {
            acc += a as u32 + b as u32;
            prop_assert!(acc <= 18);
        }
    }

    #[test]
    #[should_panic(expected = "failed")]
    fn failing_property_panics() {
        crate::test_runner::run(
            "always_fails",
            ProptestConfig::with_cases(4),
            |_rng| -> Result<(), TestCaseError> { Err(TestCaseError::fail("forced".to_string())) },
        );
    }
}
