//! `spca` — command-line front end for the streaming-PCA system.
//!
//! Subcommands:
//!
//! * `generate` — synthesize a survey extract (gappy galaxy spectra with
//!   optional contaminants) to a CSV file.
//! * `run` — stream a CSV file (or a TCP listener) through the parallel
//!   robust-PCA application; writes an outlier report and eigensystem
//!   snapshots.
//! * `inspect` — pretty-print a persisted eigensystem snapshot.
//! * `simulate` — run the calibrated cluster simulator for a placement and
//!   report throughput (the Fig. 6/7 machinery, one configuration at a
//!   time).
//!
//! Argument parsing is hand-rolled (`--key value` pairs) to keep the
//! dependency set at the workspace's five crates.

use astro_stream_pca::cluster::{ClusterSim, ClusterSpec, CostModel, Placement, SimConfig};
use astro_stream_pca::core::PcaConfig;
use astro_stream_pca::engine::{
    persist, AppConfig, AppHandles, DistSpec, EigenQueryHandler, ElasticRuntime, ElasticSupervisor,
    EpochStore, FaultCounters, ParallelPcaApp, ScaleEvent, ServeShared, SyncStrategy,
};
use astro_stream_pca::spectra::contaminants::{self, ContaminantKind};
use astro_stream_pca::spectra::io;
use astro_stream_pca::spectra::normalize::unit_norm_masked;
use astro_stream_pca::spectra::GalaxyGenerator;
use astro_stream_pca::streams::ops::http_server::{HttpServer, RateLimitConfig, ServerConfig};
use astro_stream_pca::streams::ops::{CsvFileSource, HttpSource, TcpSource};
use astro_stream_pca::streams::{Engine, Operator};
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

/// Flags each subcommand accepts; anything else is rejected up front.
fn allowed_flags(cmd: &str) -> &'static [&'static str] {
    match cmd {
        "generate" => &["out", "n", "pixels", "zmax", "contamination", "seed"],
        "coordinator" => &[
            "input",
            "listen",
            "data",
            "workers",
            "engines",
            "components",
            "memory",
            "batch",
            "capacity",
            "snapshot-every",
            "snapshots",
            "snapshot-dir",
        ],
        "worker" => &["coordinator", "index", "data"],
        "run" => &[
            "input",
            "listen",
            "url",
            "engines",
            "components",
            "memory",
            "dim",
            "sync",
            "snapshots",
            "report",
            "batch",
            "faults",
            "snapshot-dir",
            "warm-start",
            "serve",
            "serve-threads",
            "rate-limit",
            "publish-every",
            "elastic",
            "max-engines",
        ],
        "serve" => &[
            "addr",
            "input",
            "listen",
            "url",
            "engines",
            "components",
            "memory",
            "dim",
            "sync",
            "batch",
            "threads",
            "rate-limit",
            "serve-for",
            "publish-every",
        ],
        "backfill" => &[
            "input",
            "partitions",
            "state-dir",
            "workers",
            "components",
            "memory",
            "out",
        ],
        "inspect" => &["snapshot"],
        "simulate" => &["engines", "dim", "nodes", "placement"],
        _ => &[],
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let opts = match Opts::parse(rest, cmd, allowed_flags(cmd)) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "run" => cmd_run(&opts),
        "serve" => cmd_serve(&opts),
        "coordinator" => cmd_coordinator(&opts),
        "worker" => cmd_worker(&opts),
        "backfill" => cmd_backfill(&opts),
        "inspect" => cmd_inspect(&opts),
        "simulate" => cmd_simulate(&opts),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}'")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
spca — robust streaming PCA over parallel data streams

USAGE:
  spca generate --out extract.csv [--n 5000] [--pixels 200] [--zmax 0.2]
                [--contamination 0.05] [--seed 42]
  spca run      --input extract.csv | --listen 127.0.0.1:7070 |
                --url http://host/data.csv
                [--engines 4] [--components 4] [--memory 5000] [--dim D]
                [--sync ring|broadcast|none] [--snapshots DIR]
                [--report outliers.csv] [--batch 64]
                [--faults SPEC] [--snapshot-dir DIR]
                [--warm-start merged.snapshot]
                [--serve IP:PORT [--serve-threads 4] [--rate-limit QPS]
                 [--publish-every 64]]
                [--elastic EPOCH_MS [--max-engines N]]
  spca serve    --addr IP:PORT
                --input extract.csv | --listen 127.0.0.1:7070 |
                --url http://host/data.csv
                [--engines 4] [--components 4] [--memory 5000] [--dim D]
                [--sync ring|broadcast|none] [--batch 64] [--threads 4]
                [--rate-limit QPS] [--serve-for SECS] [--publish-every 64]
  spca coordinator --input extract.csv --snapshots DIR --workers 2
                --listen IP:PORT [--data IP:PORT] [--engines N]
                [--components 4] [--memory 5000] [--batch 64]
                [--capacity 1048576] [--snapshot-every 0]
                [--snapshot-dir DIR]
                (--workers 0 runs the same graph in-process — the
                 bit-identity baseline; --listen/--data are then unused)
  spca worker   --coordinator IP:PORT --index N --data IP:PORT
  spca backfill --input extract.csv|DIR [--partitions 8] [--workers 0]
                [--state-dir spca-state] [--components 4] [--memory 5000]
                [--out merged.snapshot]
  spca inspect  --snapshot FILE
  spca simulate [--engines 20] [--dim 250] [--nodes 10]
                [--placement rr|single|grouped2]

Every flag is --key value; unknown flags are rejected.

--faults injects deterministic failures: a comma-separated plan of
  panic@ENGINE:N, poison-nan@ENGINE:N, poison-inf@ENGINE:N,
  stall@ENGINE:N:MS, kill-pe@ENGINE:N, drop@FROM>TO:N, dup@FROM>TO:N,
  delay@FROM>TO:N:MS (e.g. \"panic@engine1:5000\"). kill-pe tears down the
  whole processing element hosting the target operator; every operator in
  it is rebuilt and rehydrated from the per-PE snapshot manifest. Enables
  failure-aware synchronization; pair with --snapshot-dir DIR so crashed
  engines restart from their latest recovery snapshot (and PEs from their
  manifests) instead of losing their state.

  Storage faults drill the persistence layer itself: io-enospc@pe:N
  (N-th PE checkpoint write fails with ENOSPC), io-torn@pe:N (N-th PE
  checkpoint write lands half its bytes), io-fsync-err (every fsync
  fails), io-corrupt@store:N (N-th backfill state-store write flips its
  last byte), io-crash@op:K (the K-th storage operation and everything
  after it fails, simulating a dead device). The run degrades instead of
  dying: failed checkpoints are skipped with backoff, torn or rotted
  files are quarantined to *.corrupt-N and recovery falls back to the
  previous manifest generation. Every absorbed fault shows up in the
  fault summary and /metrics (spca_io_faults, spca_quarantined_snapshots,
  spca_checkpoint_skips).

--elastic turns on live autoscaling: the fleet starts at --engines and a
  supervisor probes throughput and queue growth every EPOCH_MS, scaling
  out to at most --max-engines (default 2x --engines) under backlog and
  back in when capacity is wasted. A joining engine is bootstrapped from
  the fleet's merged eigensystem via the checkpoint format and held out
  of state sharing until its 1.5*N independence gate re-passes; a
  retiring engine is drained and its state folded into the survivors.
  Scale events land in the fault summary and /metrics (spca_scale_outs,
  spca_scale_ins).

serve answers live eigensystem queries over HTTP while the stream is
  ingested: POST /project, /reconstruct, /score, /topk?k=K (CSV
  observation in, CSV out; X-Epoch names the snapshot answered against),
  GET /healthz and /metrics. Operators publish epoch-versioned snapshots
  into a lock-free store every --publish-every updates; queries never
  block ingest. --rate-limit enables a per-client token bucket; overload
  sheds with 429 + Retry-After. --serve-for keeps serving the final
  eigensystem SECS after the stream drains. `run --serve IP:PORT`
  attaches the same server to a normal run.

backfill shards a historical corpus by partition key (row ranges of a
  file, or one partition per file when --input is a directory), estimates
  every partition in parallel, persists each finished eigensystem in the
  --state-dir store keyed by partition id + content hash, and tree-merges
  the partition states into one corpus-wide eigensystem. Re-running over
  an unchanged corpus is pure cache hits; appending one partition
  recomputes exactly one. Pass the merged snapshot to `spca run
  --warm-start` to splice archive history into a live stream.";

struct Opts(HashMap<String, String>);

impl Opts {
    fn parse(args: &[String], cmd: &str, allowed: &[&str]) -> Result<Self, String> {
        let mut map = HashMap::new();
        let mut it = args.iter();
        while let Some(k) = it.next() {
            let Some(key) = k.strip_prefix("--") else {
                return Err(format!("expected --flag, got '{k}'"));
            };
            if !allowed.contains(&key) {
                return Err(format!("unknown flag --{key} for '{cmd}'"));
            }
            let Some(v) = it.next() else {
                return Err(format!("flag --{key} is missing a value"));
            };
            if map.insert(key.to_string(), v.clone()).is_some() {
                return Err(format!("flag --{key} given more than once"));
            }
        }
        Ok(Opts(map))
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.0.get(key).map(|s| s.as_str())
    }

    fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("--{key}: cannot parse '{v}'")),
        }
    }
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let out = PathBuf::from(opts.get("out").ok_or("--out is required")?);
    let n: usize = opts.num("n", 5000)?;
    let pixels: usize = opts.num("pixels", 200)?;
    let zmax: f64 = opts.num("zmax", 0.2)?;
    let contamination: f64 = opts.num("contamination", 0.05)?;
    let seed: u64 = opts.num("seed", 42)?;

    let gen = GalaxyGenerator::new(pixels, zmax);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut rows = Vec::with_capacity(n);
    let mut contaminated = 0usize;
    for _ in 0..n {
        if rng.gen::<f64>() < contamination {
            contaminated += 1;
            let kind = match rng.gen_range(0..3) {
                0 => ContaminantKind::Quasar,
                1 => ContaminantKind::Star,
                _ => ContaminantKind::Sky,
            };
            let mut flux = contaminants::draw(&mut rng, gen.grid(), kind);
            let mask = vec![true; pixels];
            unit_norm_masked(&mut flux, &mask);
            rows.push((flux, mask));
        } else {
            let mut s = gen.sample_with_coverage(&mut rng);
            unit_norm_masked(&mut s.flux, &s.mask);
            rows.push((s.flux, s.mask));
        }
    }
    io::write_csv_masked(&out, &rows).map_err(|e| e.to_string())?;
    println!(
        "wrote {n} spectra ({contaminated} contaminants) to {}",
        out.display()
    );
    Ok(())
}

/// Resolves the ingest source (exactly one of `--input`, `--listen`,
/// `--url`) and the stream dimensionality (probed from the file, or
/// `--dim` for network streams). Shared by `run` and `serve`.
fn ingest_source_and_dim(opts: &Opts) -> Result<(Box<dyn Operator>, usize), String> {
    let source: Box<dyn Operator> = match (opts.get("input"), opts.get("listen"), opts.get("url")) {
        (Some(path), None, None) => {
            if !std::path::Path::new(path).exists() {
                return Err(format!("input file '{path}' does not exist"));
            }
            Box::new(CsvFileSource::new(path))
        }
        (None, Some(addr), None) => {
            let src = TcpSource::listen(addr).map_err(|e| format!("cannot bind {addr}: {e}"))?;
            println!("listening on {}", src.local_addr().expect("bound"));
            Box::new(src)
        }
        (None, None, Some(url)) => Box::new(HttpSource::get(url)?),
        _ => return Err("exactly one of --input, --listen or --url is required".to_string()),
    };
    let dim: usize = match opts.get("input") {
        Some(path) => {
            let first = io::read_csv(path).map_err(|e| e.to_string())?;
            first.first().ok_or("input file is empty")?.0.len()
        }
        None => opts.num("dim", 0).and_then(|d: usize| {
            if d == 0 {
                Err("--dim is required with --listen/--url".to_string())
            } else {
                Ok(d)
            }
        })?,
    };
    Ok((source, dim))
}

/// Assembles the distributed run spec shared by `coordinator` (both the
/// socket mode and the `--workers 0` in-process baseline).
fn parse_dist_spec(opts: &Opts, input: &std::path::Path) -> Result<DistSpec, String> {
    let workers: usize = opts.num("workers", 2)?;
    let engines: usize = opts.num("engines", workers.max(1))?;
    if engines == 0 {
        return Err("--engines must be at least 1".to_string());
    }
    let components: usize = opts.num("components", 4)?;
    let memory: usize = opts.num("memory", 5000)?;
    let batch: usize = opts.num("batch", astro_stream_pca::streams::DEFAULT_BATCH_SIZE)?;
    if batch == 0 {
        return Err("--batch must be at least 1".to_string());
    }
    // Bit-identity between runs needs the split to never shed to a
    // different engine, so default the channel capacity far above any
    // realistic corpus (see the distributed module docs).
    let capacity: usize = opts.num("capacity", 1 << 20)?;
    if capacity == 0 {
        return Err("--capacity must be at least 1".to_string());
    }
    let snapshot_every: u64 = opts.num("snapshot-every", 0)?;
    let snapshots = PathBuf::from(
        opts.get("snapshots")
            .ok_or("--snapshots is required (where engine eigensystems are persisted)")?,
    );
    let recovery = opts.get("snapshot-dir").map(PathBuf::from);
    let first = io::read_csv(input).map_err(|e| e.to_string())?;
    let dim = first.first().ok_or("input file is empty")?.0.len();
    if components + 2 >= dim {
        return Err(format!(
            "--components {components} too large for dimension {dim}"
        ));
    }
    Ok(DistSpec {
        n_engines: engines,
        n_workers: workers.max(1),
        dim,
        components,
        memory,
        batch,
        capacity,
        snapshot_every,
        snapshots,
        recovery,
        coord_data: std::net::SocketAddr::from(([127, 0, 0, 1], 0)),
        worker_data: Vec::new(),
    })
}

fn cmd_coordinator(opts: &Opts) -> Result<(), String> {
    let input = PathBuf::from(opts.get("input").ok_or("--input is required")?);
    if !input.exists() {
        return Err(format!("input file '{}' does not exist", input.display()));
    }
    let workers: usize = opts.num("workers", 2)?;
    let spec = parse_dist_spec(opts, &input)?;
    if workers == 0 {
        // In-process baseline: identical graph and parameters, no sockets.
        let report =
            astro_stream_pca::engine::run_local(&spec, Box::new(CsvFileSource::new(&input)));
        let processed = report.op("split").map_or(0, |o| o.tuples_in);
        println!(
            "local baseline complete: {processed} observations across {} engines; snapshots in {}",
            spec.n_engines,
            spec.snapshots.display()
        );
        return Ok(());
    }
    let listen = parse_serve_addr("listen", opts.get("listen").ok_or("--listen is required")?)?;
    let data = parse_serve_addr("data", opts.get("data").unwrap_or("127.0.0.1:0"))?;
    let out = astro_stream_pca::engine::run_coordinator(listen, data, input, spec.clone())
        .map_err(|e| format!("coordinator failed: {e}"))?;
    let processed = out.report.op("split").map_or(0, |o| o.tuples_in);
    println!(
        "distributed run complete: {processed} observations across {} engines on {} workers \
         ({} respawned); snapshots in {}",
        spec.n_engines,
        spec.n_workers,
        out.respawns,
        spec.snapshots.display()
    );
    Ok(())
}

fn cmd_worker(opts: &Opts) -> Result<(), String> {
    let coordinator = parse_serve_addr(
        "coordinator",
        opts.get("coordinator").ok_or("--coordinator is required")?,
    )?;
    let index: usize = opts
        .get("index")
        .ok_or("--index is required")?
        .parse()
        .map_err(|_| {
            format!(
                "--index: cannot parse '{}'",
                opts.get("index").unwrap_or("")
            )
        })?;
    let data = parse_serve_addr("data", opts.get("data").ok_or("--data is required")?)?;
    let _report = astro_stream_pca::engine::run_worker(coordinator, index, data)
        .map_err(|e| format!("worker {index} failed: {e}"))?;
    println!("worker {index} finished");
    Ok(())
}

fn parse_sync(opts: &Opts) -> Result<SyncStrategy, String> {
    match opts.get("sync").unwrap_or("ring") {
        "ring" => Ok(SyncStrategy::Ring),
        "broadcast" => Ok(SyncStrategy::Broadcast),
        "none" => Ok(SyncStrategy::None),
        other => Err(format!("--sync: unknown strategy '{other}'")),
    }
}

/// Strict IP:PORT parse for the query-server bind address (hostnames are
/// rejected up front so a typo'd port fails fast, before any ingest I/O).
fn parse_serve_addr(flag: &str, addr: &str) -> Result<std::net::SocketAddr, String> {
    addr.parse()
        .map_err(|_| format!("--{flag}: cannot parse '{addr}' as IP:PORT (e.g. 127.0.0.1:8080)"))
}

/// Server worker-pool size validation, shared by `run --serve-threads`
/// and `serve --threads`. Each worker claims one epoch-store reader
/// slot, so the pool is bounded by [`MAX_READERS`] — rejected here
/// instead of panicking inside the handler factory at server start.
fn validate_serve_threads(flag: &str, threads: usize) -> Result<(), String> {
    use astro_stream_pca::engine::epoch::MAX_READERS;
    if threads == 0 {
        return Err(format!("--{flag} must be at least 1"));
    }
    if threads > MAX_READERS {
        return Err(format!(
            "--{flag} must be at most {MAX_READERS} (epoch-store reader slots)"
        ));
    }
    Ok(())
}

fn parse_rate_limit(opts: &Opts) -> Result<Option<RateLimitConfig>, String> {
    match opts.get("rate-limit") {
        None => Ok(None),
        Some(v) => {
            let per_sec: f64 = v
                .parse()
                .map_err(|_| format!("--rate-limit: cannot parse '{v}'"))?;
            if !per_sec.is_finite() || per_sec <= 0.0 {
                return Err("--rate-limit must be a positive request rate".to_string());
            }
            Ok(Some(RateLimitConfig {
                per_sec,
                burst: (2.0 * per_sec).max(1.0),
            }))
        }
    }
}

/// Boots the eigensystem query server over `store` and wires its stats
/// into `/metrics`.
fn start_query_server(
    addr: std::net::SocketAddr,
    threads: usize,
    rate_limit: Option<RateLimitConfig>,
    shared: &Arc<ServeShared>,
) -> Result<HttpServer, String> {
    let cfg = ServerConfig {
        threads,
        rate_limit,
        ..ServerConfig::default()
    };
    let factory_shared = Arc::clone(shared);
    let server = HttpServer::start(addr, cfg, move |_| {
        EigenQueryHandler::new(Arc::clone(&factory_shared))
    })
    .map_err(|e| format!("cannot bind query server on {addr}: {e}"))?;
    shared.set_server_stats(server.stats());
    println!("serving queries on http://{}", server.local_addr());
    Ok(server)
}

/// Runs the dataflow to completion while mirroring live fault counters
/// into `/metrics`; the final mirror comes from the finished report, so
/// the endpoint and the CLI fault summary report identical values.
fn run_mirroring_counters(
    graph: astro_stream_pca::streams::GraphBuilder,
    shared: &Arc<ServeShared>,
) -> astro_stream_pca::streams::RunReport {
    let running = Engine::start(graph);
    while !running.is_finished() {
        shared.set_counters(FaultCounters::from_op_snapshots(&running.op_snapshots()));
        std::thread::sleep(Duration::from_millis(100));
    }
    let report = running.join();
    shared.set_counters(FaultCounters::from_report(&report));
    report
}

/// Runs an elastic dataflow to completion: the autoscaling supervisor
/// ticks in the polling loop (probing throughput and queue growth, and
/// executing live rescales through the shared membership handle), while
/// fault counters are mirrored into `/metrics` when serving is attached.
fn run_elastic(
    graph: astro_stream_pca::streams::GraphBuilder,
    handles: &AppHandles,
    epoch: Duration,
    shared: Option<&Arc<ServeShared>>,
) -> (astro_stream_pca::streams::RunReport, Vec<ScaleEvent>) {
    let runtime = ElasticRuntime::new(handles).expect("app built with max_engines");
    let mut supervisor = ElasticSupervisor::new(runtime, epoch);
    let running = Engine::start(graph);
    while !running.is_finished() {
        if let Some(ev) = supervisor.tick(&running) {
            println!(
                "autoscaler: {:+} engines -> fleet of {} ({:.1} ms migration)",
                ev.action,
                ev.active_after,
                ev.latency.as_secs_f64() * 1e3
            );
        }
        if let Some(shared) = shared {
            shared.set_counters(FaultCounters::from_op_snapshots(&running.op_snapshots()));
        }
        std::thread::sleep(Duration::from_millis(20));
    }
    let report = running.join();
    if let Some(shared) = shared {
        shared.set_counters(FaultCounters::from_report(&report));
    }
    (report, supervisor.events.clone())
}

fn print_server_stats(server: &HttpServer) {
    let stats = server.stats();
    use std::sync::atomic::Ordering::Relaxed;
    println!(
        "query server: {} served, {} shed, {} rate-limited",
        stats.served.load(Relaxed),
        stats.shed.load(Relaxed),
        stats.rate_limited.load(Relaxed)
    );
}

fn cmd_run(opts: &Opts) -> Result<(), String> {
    let engines: usize = opts.num("engines", 4)?;
    let components: usize = opts.num("components", 4)?;
    let memory: usize = opts.num("memory", 5000)?;
    let batch: usize = opts.num("batch", astro_stream_pca::streams::DEFAULT_BATCH_SIZE)?;
    if batch == 0 {
        return Err("--batch must be at least 1".to_string());
    }
    // Validate the fault plan and serving flags before any I/O, so a bad
    // spec is reported even when the input is also wrong.
    let faults = opts
        .get("faults")
        .map(|spec| {
            astro_stream_pca::streams::FaultPlan::parse(spec).map_err(|e| format!("--faults: {e}"))
        })
        .transpose()?;
    let serve_addr = opts
        .get("serve")
        .map(|a| parse_serve_addr("serve", a))
        .transpose()?;
    let serve_threads: usize = opts.num("serve-threads", 4)?;
    let rate_limit = parse_rate_limit(opts)?;
    let publish_every: u64 = opts.num("publish-every", 64)?;
    if serve_addr.is_none() {
        for flag in ["serve-threads", "rate-limit", "publish-every"] {
            if opts.get(flag).is_some() {
                return Err(format!("--{flag} requires --serve"));
            }
        }
    }
    if serve_addr.is_some() {
        validate_serve_threads("serve-threads", serve_threads)?;
    }
    let elastic_epoch_ms: Option<u64> = opts
        .get("elastic")
        .map(|_| opts.num("elastic", 0))
        .transpose()?;
    if elastic_epoch_ms == Some(0) {
        return Err("--elastic needs a monitoring epoch of at least 1 ms".to_string());
    }
    let max_engines: usize = opts.num("max-engines", engines.saturating_mul(2).max(2))?;
    if opts.get("max-engines").is_some() && elastic_epoch_ms.is_none() {
        return Err("--max-engines requires --elastic".to_string());
    }
    if elastic_epoch_ms.is_some() && max_engines < engines {
        return Err(format!(
            "--max-engines {max_engines} is below the starting fleet of {engines} engines"
        ));
    }

    let (source, dim) = ingest_source_and_dim(opts)?;
    if components + 2 >= dim {
        return Err(format!(
            "--components {components} too large for dimension {dim}"
        ));
    }

    let pca = PcaConfig::new(dim, components)
        .with_memory(memory)
        .with_extra(2);
    let mut cfg = AppConfig::new(engines, pca);
    cfg.batch_size = batch;
    cfg.emit_outcomes = opts.get("report").is_some();
    cfg.sync = parse_sync(opts)?;
    if let Some(dir) = opts.get("snapshots") {
        cfg.snapshot_dir = Some(PathBuf::from(dir));
    }
    if let Some(plan) = faults {
        cfg.faults = Some(astro_stream_pca::engine::normalize_fault_targets(plan));
        // Injected failures only make sense with the failure-aware
        // controller watching for them.
        cfg.failure_aware_sync = true;
    }
    if let Some(dir) = opts.get("snapshot-dir") {
        cfg.recovery_dir = Some(PathBuf::from(dir));
    }
    if elastic_epoch_ms.is_some() {
        cfg.max_engines = Some(max_engines);
    }
    if let Some(path) = opts.get("warm-start") {
        let eig = persist::read_snapshot(std::path::Path::new(path))
            .map_err(|e| format!("--warm-start {path}: {e}"))?;
        if eig.dim() != dim {
            return Err(format!(
                "--warm-start snapshot has dimension {}, stream has {dim}",
                eig.dim()
            ));
        }
        println!(
            "warm-starting every engine from {path} (n_obs = {})",
            eig.n_obs
        );
        cfg.warm_start = Some(eig);
    }

    let serving = match serve_addr {
        Some(addr) => {
            let store = Arc::new(EpochStore::new());
            cfg.epoch_store = Some(Arc::clone(&store));
            cfg.publish_every = publish_every;
            let shared = Arc::new(ServeShared::new(store));
            let server = start_query_server(addr, serve_threads, rate_limit, &shared)?;
            Some((shared, server))
        }
        None => None,
    };

    let (graph, handles) = ParallelPcaApp::build(&cfg, source);
    if let Some(ms) = elastic_epoch_ms {
        println!(
            "running {engines} engines elastically (ceiling {max_engines}, epoch {ms} ms, \
             d = {dim}, p = {components}, N = {memory}) ..."
        );
    } else {
        println!("running {engines} engines (d = {dim}, p = {components}, N = {memory}) ...");
    }
    let mut scale_events: Vec<ScaleEvent> = Vec::new();
    let report = match elastic_epoch_ms {
        Some(ms) => {
            let (report, events) = run_elastic(
                graph,
                &handles,
                Duration::from_millis(ms),
                serving.as_ref().map(|(shared, _)| shared),
            );
            scale_events = events;
            report
        }
        None => match &serving {
            Some((shared, _)) => run_mirroring_counters(graph, shared),
            None => Engine::run(graph),
        },
    };
    let consumed = report.tuples_in_matching("pca-");
    println!(
        "processed {consumed} tuples in {:.2}s ({:.0} tuples/s)",
        report.elapsed.as_secs_f64(),
        consumed as f64 / report.elapsed.as_secs_f64().max(1e-9)
    );
    let (restarts, pe_restarts, quarantined, sync_skips) = (
        report.total_restarts(),
        report.total_pe_restarts(),
        report.total_quarantined(),
        report.total_sync_skips(),
    );
    let (io_faults, quarantined_snapshots, checkpoint_skips) = (
        report.total_io_faults(),
        report.total_quarantined_snapshots(),
        report.total_checkpoint_skips(),
    );
    let (scale_outs, scale_ins) = (report.total_scale_outs(), report.total_scale_ins());
    if restarts
        + pe_restarts
        + quarantined
        + sync_skips
        + io_faults
        + quarantined_snapshots
        + checkpoint_skips
        + scale_outs
        + scale_ins
        > 0
    {
        println!(
            "fault summary: {restarts} operator restarts, {pe_restarts} PE restarts \
             (operator-weighted), {quarantined} quarantined tuples, \
             {sync_skips} skipped syncs, {io_faults} storage faults absorbed, \
             {quarantined_snapshots} quarantined snapshots, \
             {checkpoint_skips} skipped checkpoints, \
             {scale_outs} scale-outs, {scale_ins} scale-ins"
        );
    }
    if elastic_epoch_ms.is_some() {
        let outs = scale_events.iter().filter(|e| e.action > 0).count();
        let ins = scale_events.iter().filter(|e| e.action < 0).count();
        let final_fleet = scale_events
            .last()
            .map(|e| e.active_after)
            .unwrap_or(engines);
        println!(
            "autoscaler summary: {} rescale events ({outs} out, {ins} in), \
             final fleet {final_fleet} engines",
            scale_events.len()
        );
    }

    if let Some(path) = opts.get("report") {
        let outcomes = handles.outcomes.expect("enabled above");
        let rows: Vec<Vec<f64>> = outcomes
            .lock()
            .iter()
            .map(|t| t.values.as_ref().clone())
            .collect();
        let flagged = rows.iter().filter(|r| r[4] > 0.5).count();
        io::write_csv(path, &rows).map_err(|e| e.to_string())?;
        println!(
            "outlier report: {flagged}/{} rows flagged → {path}",
            rows.len()
        );
    }
    match handles.hub.merged_estimate() {
        Ok(merged) => {
            println!(
                "merged eigenvalues: {:?}",
                merged
                    .values
                    .iter()
                    .map(|v| (v * 1e4).round() / 1e4)
                    .collect::<Vec<_>>()
            );
            println!(
                "variance captured by p components: {:.1}%",
                100.0 * merged.variance_captured(components)
            );
        }
        Err(e) => println!("no merged estimate: {e}"),
    }
    if let Some((_, server)) = serving {
        print_server_stats(&server);
        server.shutdown();
    }
    Ok(())
}

/// `spca serve` — always-on eigensystem serving: ingest the stream while
/// answering HTTP queries against the live epoch store, then (optionally)
/// keep serving the final eigensystem after the stream drains.
fn cmd_serve(opts: &Opts) -> Result<(), String> {
    let addr = parse_serve_addr("addr", opts.get("addr").ok_or("--addr is required")?)?;
    let engines: usize = opts.num("engines", 4)?;
    let components: usize = opts.num("components", 4)?;
    let memory: usize = opts.num("memory", 5000)?;
    let batch: usize = opts.num("batch", astro_stream_pca::streams::DEFAULT_BATCH_SIZE)?;
    if batch == 0 {
        return Err("--batch must be at least 1".to_string());
    }
    let threads: usize = opts.num("threads", 4)?;
    validate_serve_threads("threads", threads)?;
    let serve_for: u64 = opts.num("serve-for", 0)?;
    let rate_limit = parse_rate_limit(opts)?;
    let publish_every: u64 = opts.num("publish-every", 64)?;

    let (source, dim) = ingest_source_and_dim(opts)?;
    if components + 2 >= dim {
        return Err(format!(
            "--components {components} too large for dimension {dim}"
        ));
    }

    let pca = PcaConfig::new(dim, components)
        .with_memory(memory)
        .with_extra(2);
    let mut cfg = AppConfig::new(engines, pca);
    cfg.batch_size = batch;
    cfg.sync = parse_sync(opts)?;
    let store = Arc::new(EpochStore::new());
    cfg.epoch_store = Some(Arc::clone(&store));
    cfg.publish_every = publish_every;

    let shared = Arc::new(ServeShared::new(Arc::clone(&store)));
    let server = start_query_server(addr, threads, rate_limit, &shared)?;

    let (graph, handles) = ParallelPcaApp::build(&cfg, source);
    println!("running {engines} engines (d = {dim}, p = {components}, N = {memory}) ...");
    let report = run_mirroring_counters(graph, &shared);
    let consumed = report.tuples_in_matching("pca-");
    println!(
        "ingest drained: {consumed} tuples in {:.2}s ({:.0} tuples/s), {} epochs published",
        report.elapsed.as_secs_f64(),
        consumed as f64 / report.elapsed.as_secs_f64().max(1e-9),
        store.epoch()
    );
    match handles.hub.merged_estimate() {
        Ok(merged) => println!(
            "variance captured by p components: {:.1}%",
            100.0 * merged.variance_captured(components)
        ),
        Err(e) => println!("no merged estimate: {e}"),
    }
    if serve_for > 0 {
        println!("serving the final eigensystem for {serve_for}s more");
        std::thread::sleep(Duration::from_secs(serve_for));
    }
    print_server_stats(&server);
    server.shutdown();
    Ok(())
}

fn cmd_backfill(opts: &Opts) -> Result<(), String> {
    use astro_stream_pca::engine::{backfill, partition_csv_files, partition_csv_rows};

    // Validate flag values before any I/O, so a bad value is reported even
    // when the input is also wrong (same policy as `run --batch`).
    let n_partitions: usize = opts.num("partitions", 8)?;
    if n_partitions == 0 {
        return Err("--partitions must be at least 1".to_string());
    }
    let workers: usize = opts.num("workers", 0)?;
    let components: usize = opts.num("components", 4)?;
    let memory: usize = opts.num("memory", 5000)?;
    let state_dir = PathBuf::from(opts.get("state-dir").unwrap_or("spca-state"));
    let input = PathBuf::from(opts.get("input").ok_or("--input is required")?);
    if !input.exists() {
        return Err(format!("input '{}' does not exist", input.display()));
    }

    let partitions = if input.is_dir() {
        let mut files: Vec<PathBuf> = std::fs::read_dir(&input)
            .map_err(|e| e.to_string())?
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .filter(|p| p.extension().map(|x| x == "csv").unwrap_or(false))
            .collect();
        files.sort();
        if files.is_empty() {
            return Err(format!("no .csv files in '{}'", input.display()));
        }
        partition_csv_files(&files).map_err(|e| e.to_string())?
    } else {
        partition_csv_rows(&input, n_partitions).map_err(|e| e.to_string())?
    };

    // Probe the dimensionality from the first data row of the first
    // partition (the partitions already hold the corpus bytes).
    let first_text = partitions[0].payload.as_str().map_err(|e| e.to_string())?;
    let dim = first_text
        .lines()
        .find_map(io::parse_csv_line)
        .ok_or("corpus has no data rows")?
        .0
        .len();
    if components + 2 >= dim {
        return Err(format!(
            "--components {components} too large for dimension {dim}"
        ));
    }

    let pca = PcaConfig::new(dim, components)
        .with_memory(memory)
        .with_extra(2);
    let cfg = astro_stream_pca::engine::BackfillConfig {
        pca,
        workers,
        state_dir,
    };
    let outcome = backfill(&cfg, &partitions).map_err(|e| e.to_string())?;
    println!(
        "backfill: {} partitions ({} cache hits, {} computed, {} quarantined) \
         on {} workers in {:.2}s",
        outcome.stats.partitions,
        outcome.stats.cache_hits,
        outcome.stats.computed,
        outcome.stats.quarantined,
        outcome.stats.workers,
        outcome.stats.wall.as_secs_f64()
    );
    let merged = &outcome.merged;
    println!(
        "merged eigensystem: d = {}, components = {}, n_obs = {}",
        merged.dim(),
        merged.n_components(),
        merged.n_obs
    );
    println!(
        "merged eigenvalues: {:?}",
        merged
            .values
            .iter()
            .take(components)
            .map(|v| (v * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );
    if let Some(out) = opts.get("out") {
        persist::write_snapshot(std::path::Path::new(out), merged).map_err(|e| e.to_string())?;
        println!("wrote merged snapshot to {out}");
    }
    Ok(())
}

fn cmd_inspect(opts: &Opts) -> Result<(), String> {
    let path = PathBuf::from(opts.get("snapshot").ok_or("--snapshot is required")?);
    let eig = persist::read_snapshot(&path).map_err(|e| e.to_string())?;
    println!("snapshot: {}", path.display());
    println!("  dimension  : {}", eig.dim());
    println!("  components : {}", eig.n_components());
    println!("  n_obs      : {}", eig.n_obs);
    println!("  sigma^2    : {:.6e}", eig.sigma2);
    println!(
        "  sums       : u {:.3}  v {:.3}  q {:.3e}",
        eig.sum_u, eig.sum_v, eig.sum_q
    );
    println!("  eigenvalues:");
    for (k, v) in eig.values.iter().enumerate() {
        let frac = 100.0 * eig.variance_captured(k + 1);
        println!(
            "    λ{:<2} = {v:<12.6e} (cumulative variance {frac:.1}%)",
            k + 1
        );
    }
    Ok(())
}

fn cmd_simulate(opts: &Opts) -> Result<(), String> {
    let engines: usize = opts.num("engines", 20)?;
    let dim: usize = opts.num("dim", 250)?;
    let nodes: usize = opts.num("nodes", 10)?;
    let spec = ClusterSpec {
        n_nodes: nodes,
        ..ClusterSpec::paper()
    };
    let placement = match opts.get("placement").unwrap_or("rr") {
        "rr" => Placement::round_robin(engines, nodes),
        "single" => Placement::single_node(engines),
        "grouped2" => Placement::grouped(engines, 2, nodes),
        other => return Err(format!("--placement: unknown '{other}'")),
    };
    let cfg = SimConfig {
        dim,
        ..Default::default()
    };
    let report = ClusterSim::new(spec, CostModel::paper(), placement, cfg).run();
    println!("simulated {engines} engines on {nodes} nodes at d = {dim}:");
    println!(
        "  throughput : {:.0} tuples/s ({:.0}/thread)",
        report.throughput,
        report.per_thread()
    );
    println!(
        "  network    : {:.1} MB transferred",
        report.network_bytes / 1e6
    );
    println!("  syncs      : {}", report.syncs);
    Ok(())
}
