//! # astro-stream-pca
//!
//! Umbrella crate for the reproduction of *"Incremental and Parallel
//! Analytics on Astrophysical Data Streams"* (Mishin, Budavári, Szalay,
//! Ahmad — SC 2012): robust, incremental principal components analysis over
//! parallel data streams, with data-driven synchronization, on an
//! InfoSphere-Streams-like dataflow engine built from scratch in Rust.
//!
//! The workspace is organized bottom-up (see `DESIGN.md`):
//!
//! * [`linalg`] — dense matrix kernels (QR, Jacobi SVD, symmetric eigen).
//! * [`core`] — the paper's algorithm: robust incremental PCA, eigensystem
//!   merging, gap handling, batch baselines.
//! * [`spectra`] — synthetic SDSS-like galaxy spectra, outliers, gaps, and
//!   Gaussian performance workloads.
//! * [`streams`] — the dataflow engine: tuples, operators, threaded split,
//!   throttle, control ports, fusion, metrics.
//! * [`cluster`] — a calibrated discrete-event simulator of the paper's
//!   10-node / 1 GbE cluster for the scaling experiments.
//! * [`engine`] — the full parallel streaming-PCA application (paper Fig. 2)
//!   with ring / broadcast / group synchronization.
//!
//! ## Quickstart
//!
//! ```
//! use astro_stream_pca::core::{RobustPca, PcaConfig};
//! use astro_stream_pca::spectra::synthetic::PlantedSubspace;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(1);
//! let workload = PlantedSubspace::new(32, 3, 0.05);
//! let mut pca = RobustPca::new(PcaConfig::new(32, 3));
//! for _ in 0..500 {
//!     pca.update(&workload.sample(&mut rng));
//! }
//! let eig = pca.eigensystem();
//! assert_eq!(eig.n_components(), 3);
//! ```

pub use spca_cluster as cluster;
pub use spca_core as core;
pub use spca_engine as engine;
pub use spca_linalg as linalg;
pub use spca_spectra as spectra;
pub use spca_streams as streams;
