//! Galaxy eigenspectra from a gappy spectral stream (the Fig. 4 → Fig. 5
//! story).
//!
//! Streams synthetic SDSS-like galaxy spectra — normalized, with
//! redshift-dependent wavelength coverage and random bad-pixel snippets —
//! through the robust incremental PCA, and shows how the leading
//! eigenspectra sharpen from noise into physically meaningful features:
//! the roughness of each eigenvector drops and the emission-line pixels
//! (Hα, [O III], Hβ) emerge in the line-carrying component.
//!
//! Run with: `cargo run --release --example galaxy_eigenspectra`

use astro_stream_pca::core::metrics::roughness;
use astro_stream_pca::core::{PcaConfig, RobustPca};
use astro_stream_pca::spectra::gaps::SnippetGaps;
use astro_stream_pca::spectra::normalize::unit_norm_masked;
use astro_stream_pca::spectra::GalaxyGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n_pixels = 400;
    let p = 4;
    let gen = GalaxyGenerator::new(n_pixels, 0.3);
    let snippets = SnippetGaps::new(1.5, 4, 12);
    let mut rng = StdRng::seed_from_u64(2012);

    let cfg = PcaConfig::new(n_pixels, p)
        .with_memory(20_000)
        .with_init_size(60)
        .with_extra(2);
    let mut pca = RobustPca::new(cfg);

    let checkpoints = [200u64, 1000, 5000, 20_000];
    println!("streaming gappy galaxy spectra ({n_pixels} px, p = {p}) ...\n");
    println!(
        "{:>8} | {:>10} {:>10} {:>10} {:>10} | mean coverage",
        "n_obs", "rough e1", "rough e2", "rough e3", "rough e4"
    );

    let mut coverage_sum = 0usize;
    let mut early_roughness = 0.0;
    let mut late_roughness = 0.0;
    for i in 0..checkpoints[checkpoints.len() - 1] {
        let mut s = gen.sample_with_coverage(&mut rng);
        snippets.apply(&mut rng, &mut s.mask);
        if s.n_observed() == 0 {
            continue;
        }
        unit_norm_masked(&mut s.flux, &s.mask);
        coverage_sum += s.n_observed();
        pca.update_masked(&s.flux, &s.mask).expect("valid spectrum");

        if checkpoints.contains(&(i + 1)) {
            let eig = pca.eigensystem();
            let rough: Vec<f64> = (0..p).map(|k| roughness(eig.eigenvector(k))).collect();
            println!(
                "{:>8} | {:>10.4} {:>10.4} {:>10.4} {:>10.4} | {:.0} px",
                i + 1,
                rough[0],
                rough[1],
                rough[2],
                rough[3],
                coverage_sum as f64 / (i + 1) as f64
            );
            let mean_rough = rough.iter().sum::<f64>() / p as f64;
            if i + 1 == checkpoints[0] {
                early_roughness = mean_rough;
            }
            if i + 1 == *checkpoints.last().unwrap() {
                late_roughness = mean_rough;
            }
        }
    }

    // Line recovery: find the eigenvector with the most energy at the Hα
    // pixel and check the other strong emission lines co-locate in it.
    let eig = pca.eigensystem();
    let grid = gen.grid();
    let line_pixels: Vec<(usize, &str)> = [
        (6562.8, "Halpha"),
        (5006.8, "[OIII]5007"),
        (4861.3, "Hbeta"),
    ]
    .iter()
    .filter_map(|&(l, name)| grid.pixel_of(l).map(|p| (p, name)))
    .collect();
    let (ha_pix, _) = line_pixels[0];
    let (best_k, _) = (0..p)
        .map(|k| (k, eig.eigenvector(k)[ha_pix].abs()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"))
        .expect("p >= 1");
    println!("\nemission-line component: e{}", best_k + 1);
    let ev = eig.eigenvector(best_k);
    let typical = ev.iter().map(|v| v.abs()).sum::<f64>() / ev.len() as f64;
    for (pix, name) in &line_pixels {
        let amp = ev[*pix].abs();
        println!(
            "  {name:<12} pixel {pix:>4}: |e| = {amp:.4}  ({:.1}x typical)",
            amp / typical
        );
    }

    println!(
        "\neigenspectra smoothed {:.1}x from n = {} to n = {}",
        early_roughness / late_roughness.max(1e-12),
        checkpoints[0],
        checkpoints.last().unwrap()
    );
    assert!(
        late_roughness < early_roughness,
        "eigenspectra should smooth out as the stream progresses"
    );
    println!("OK: eigenspectra developed smooth, line-bearing structure.");
}
