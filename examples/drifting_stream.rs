//! Tracking time-dependent phenomena (§II-B / §II-C's motivation:
//! "keeping all elements is vital to learn the changes in the stream in a
//! timely manner").
//!
//! A spectral source drifts: the dominant variance direction rotates
//! slowly from one axis-pair to another (an instrument degrading, or a
//! survey moving between galaxy populations). Three trackers watch the
//! same stream:
//!
//! * α-damped robust PCA (the paper's forgetting factor),
//! * sliding-window robust PCA (§II-B's alternative),
//! * two [`BasisScaleTracker`]s scoring the *old* and *new* bases — the
//!   §II-B trick for "meaningful comparison of the performance of various
//!   bases" on a live stream.
//!
//! Run with: `cargo run --release --example drifting_stream`

use astro_stream_pca::core::metrics::subspace_distance;
use astro_stream_pca::core::{BasisScaleTracker, PcaConfig, RobustPca, WindowedPca};
use astro_stream_pca::linalg::rng::standard_normal;
use astro_stream_pca::linalg::Mat;
use rand::rngs::StdRng;
use rand::SeedableRng;

const D: usize = 24;
const N: usize = 12_000;

/// The true basis at progress `f ∈ [0, 1]`: axes (0,1) rotating into (6,7).
fn true_basis(f: f64) -> Mat {
    let theta = f * std::f64::consts::FRAC_PI_2;
    let (c, s) = (theta.cos(), theta.sin());
    let mut m = Mat::zeros(D, 2);
    m[(0, 0)] = c;
    m[(6, 0)] = s;
    m[(1, 1)] = c;
    m[(7, 1)] = s;
    m
}

fn sample(rng: &mut StdRng, f: f64) -> Vec<f64> {
    let b = true_basis(f);
    let c1 = 4.0 * standard_normal(rng);
    let c2 = 2.0 * standard_normal(rng);
    let mut x: Vec<f64> = (0..D).map(|i| c1 * b[(i, 0)] + c2 * b[(i, 1)]).collect();
    for v in x.iter_mut() {
        *v += 0.02 * standard_normal(rng);
    }
    x
}

fn main() {
    let mut rng = StdRng::seed_from_u64(9);
    let cfg = PcaConfig::new(D, 2).with_init_size(40).with_extra(0);

    let mut damped = RobustPca::new(cfg.clone().with_memory(800));
    let mut windowed = WindowedPca::new(cfg.clone().with_alpha(1.0), 400, 2);
    let mut score_old = BasisScaleTracker::new(true_basis(0.0), &cfg.clone().with_memory(800));
    let mut score_new = BasisScaleTracker::new(true_basis(1.0), &cfg.clone().with_memory(800));

    println!(
        "{:>7} | {:>12} {:>12} | {:>12} {:>12}",
        "n", "damped err", "window err", "old-basis λΣ", "new-basis λΣ"
    );
    for i in 0..N {
        let f = i as f64 / N as f64;
        let x = sample(&mut rng, f);
        damped.update(&x).expect("finite");
        windowed.update(&x).expect("finite");
        score_old.update(&x).expect("finite");
        score_new.update(&x).expect("finite");

        if (i + 1) % 2000 == 0 {
            let truth = true_basis(f);
            let de = subspace_distance(&damped.eigensystem().basis, &truth).expect("shapes");
            let we = windowed
                .eigensystem()
                .map(|e| subspace_distance(&e.basis, &truth).expect("shapes"))
                .unwrap_or(f64::NAN);
            println!(
                "{:>7} | {:>12.4} {:>12.4} | {:>12.2} {:>12.2}",
                i + 1,
                de,
                we,
                score_old.captured(),
                score_new.captured()
            );
        }
    }

    // Both adaptive trackers must end on the rotated basis.
    let final_truth = true_basis(1.0);
    let d_damped = subspace_distance(&damped.eigensystem().basis, &final_truth).expect("shapes");
    let d_window = subspace_distance(&windowed.eigensystem().expect("panes").basis, &final_truth)
        .expect("shapes");
    println!("\nfinal subspace error — damped: {d_damped:.4}, windowed: {d_window:.4}");

    // And the live basis scores must have crossed: the old basis dominated
    // early, the new basis dominates at the end.
    let (old_score, new_score) = (score_old.captured(), score_new.captured());
    println!("robust variance captured — old basis: {old_score:.1}, new basis: {new_score:.1}");

    assert!(d_damped < 0.15, "damped tracker lost the drift: {d_damped}");
    assert!(
        d_window < 0.15,
        "windowed tracker lost the drift: {d_window}"
    );
    assert!(
        new_score > 2.0 * old_score,
        "basis comparison failed to notice the drift: {old_score} vs {new_score}"
    );
    println!("\nOK: both forgetting mechanisms tracked the drift; basis scoring detected it.");
}
