//! Classic vs robust PCA under contamination — the Fig. 1 contrast.
//!
//! Streams planted low-rank data with 8% gross outliers through both
//! estimators and prints the eigenvalue traces side by side: the classic
//! eigensystem is repeatedly captured by outliers (the paper's "rainbow
//! effect" — eigenvalues jump and the basis swings), while the robust
//! M-scale estimator stays locked on the true subspace and flags the
//! contaminated tuples.
//!
//! Run with: `cargo run --release --example outlier_flagging`

use astro_stream_pca::core::metrics::subspace_distance;
use astro_stream_pca::core::{PcaConfig, RhoKind, RobustPca};
use astro_stream_pca::spectra::outliers::{OutlierInjector, OutlierKind};
use astro_stream_pca::spectra::PlantedSubspace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dim = 50;
    let rank = 4;
    let n = 8000;
    let truth = PlantedSubspace::new(dim, rank, 0.05);
    let injector = OutlierInjector::new(0.08).only(OutlierKind::CosmicRay);

    let base = PcaConfig::new(dim, rank)
        .with_memory(1500)
        .with_init_size(60);
    let mut robust = RobustPca::new(base.clone().with_rho(RhoKind::Bisquare(9.0)));
    let mut classic = RobustPca::new(base.with_rho(RhoKind::Classical));

    let mut rng = StdRng::seed_from_u64(1);
    let mut flagged = 0u64;
    let mut injected = 0u64;

    println!(
        "{:>6} | {:^27} | {:^27}",
        "n", "classic eigenvalues", "robust eigenvalues"
    );
    for i in 0..n {
        let mut x = truth.sample(&mut rng);
        if injector.maybe_contaminate(&mut rng, &mut x).is_some() {
            injected += 1;
        }
        classic.update(&x).expect("finite");
        let out = robust.update(&x).expect("finite");
        if out.outlier {
            flagged += 1;
        }
        if (i + 1) % 1000 == 0 {
            let ce = classic.eigensystem();
            let re = robust.eigensystem();
            let fmt = |v: &[f64]| {
                v.iter()
                    .map(|x| format!("{x:6.1}"))
                    .collect::<Vec<_>>()
                    .join(" ")
            };
            println!("{:>6} | {} | {}", i + 1, fmt(&ce.values), fmt(&re.values));
        }
    }

    let ce = classic.eigensystem();
    let re = robust.eigensystem();
    let classic_dist = subspace_distance(&ce.basis, truth.basis()).expect("shapes");
    let robust_dist = subspace_distance(&re.basis, truth.basis()).expect("shapes");

    println!(
        "\ntrue eigenvalues: {:?}",
        truth
            .true_eigenvalues()
            .iter()
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!("subspace error — classic: {classic_dist:.3},  robust: {robust_dist:.3}");
    println!("outliers flagged by the robust engine: {flagged} (injected {injected})");

    assert!(robust_dist < 0.15, "robust should hold the subspace");
    assert!(
        classic_dist > 2.0 * robust_dist,
        "classic should be visibly captured by the contamination"
    );
    println!("\nOK: robust PCA ignored the contamination the classic estimator absorbed.");
}
