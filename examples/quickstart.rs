//! Quickstart: robust incremental PCA on a synthetic stream.
//!
//! Streams 5 000 observations from a planted 3-dimensional subspace (with
//! 3% gross outliers mixed in), prints the recovered eigenvalues, the
//! subspace recovery error against ground truth, and the outlier-detection
//! tally.
//!
//! Run with: `cargo run --release --example quickstart`

use astro_stream_pca::core::metrics::subspace_distance;
use astro_stream_pca::core::{PcaConfig, RobustPca};
use astro_stream_pca::spectra::outliers::{OutlierInjector, OutlierKind};
use astro_stream_pca::spectra::PlantedSubspace;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let dim = 64;
    let rank = 3;
    let mut rng = StdRng::seed_from_u64(7);

    let workload = PlantedSubspace::new(dim, rank, 0.05);
    let injector = OutlierInjector::new(0.03).only(OutlierKind::CosmicRay);

    let cfg = PcaConfig::new(dim, rank)
        .with_memory(2000)
        .with_init_size(50);
    let mut pca = RobustPca::new(cfg);

    let (mut outliers_true, mut outliers_flagged, mut false_flags) = (0u64, 0u64, 0u64);
    for _ in 0..5000 {
        let mut x = workload.sample(&mut rng);
        let contaminated = injector.maybe_contaminate(&mut rng, &mut x).is_some();
        let outcome = pca.update(&x).expect("finite observation");
        if contaminated {
            outliers_true += 1;
            if outcome.outlier {
                outliers_flagged += 1;
            }
        } else if outcome.outlier {
            false_flags += 1;
        }
    }

    let eig = pca.eigensystem();
    println!(
        "processed {} observations in {} dimensions",
        pca.n_obs(),
        dim
    );
    println!("\nrecovered eigenvalues vs ground truth:");
    for (k, (est, truth)) in eig
        .values
        .iter()
        .zip(workload.true_eigenvalues())
        .enumerate()
    {
        println!("  λ{k}: {est:8.3}   (true {truth:8.3})");
    }
    let dist = subspace_distance(&eig.basis, workload.basis()).expect("shapes match");
    println!("\nsubspace recovery error (sin of max principal angle): {dist:.4}");
    println!("robust scale σ² = {:.5}", eig.sigma2);
    println!(
        "\noutliers: {outliers_flagged}/{outliers_true} injected spikes flagged, \
         {false_flags} false positives"
    );

    assert!(
        dist < 0.1,
        "robust PCA failed to recover the planted subspace"
    );
    println!("\nOK: planted subspace recovered despite contamination.");
}
