//! The full parallel application (paper Fig. 2) on a live dataflow.
//!
//! Builds `source → threaded split → 6 streaming-PCA engines` with ring
//! synchronization (Fig. 3) on the from-scratch dataflow engine, runs it to
//! completion, and compares the merged parallel estimate against (a) the
//! ground-truth planted basis and (b) a single sequential engine fed the
//! same stream.
//!
//! Run with: `cargo run --release --example parallel_partition`

use astro_stream_pca::core::metrics::subspace_distance;
use astro_stream_pca::core::{PcaConfig, RobustPca};
use astro_stream_pca::engine::{AppConfig, ParallelPcaApp, SyncStrategy};
use astro_stream_pca::spectra::PlantedSubspace;
use astro_stream_pca::streams::ops::GeneratorSource;
use astro_stream_pca::streams::Engine;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let dim = 64;
    let rank = 3;
    let n_engines = 6;
    let n_tuples: u64 = 30_000;
    let truth = PlantedSubspace::new(dim, rank, 0.05);

    let pca_cfg = PcaConfig::new(dim, rank)
        .with_memory(4000)
        .with_init_size(60);

    // --- Sequential reference: one engine sees the whole stream. ---
    let mut seq = RobustPca::new(pca_cfg.clone());
    {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..n_tuples {
            seq.update(&truth.sample(&mut rng)).expect("finite");
        }
    }
    let seq_eig = seq.eigensystem();
    let seq_dist = subspace_distance(&seq_eig.basis, truth.basis()).expect("shapes");

    // --- Parallel run on the dataflow engine. ---
    let mut cfg = AppConfig::new(n_engines, pca_cfg);
    cfg.sync = SyncStrategy::Ring;
    cfg.sync_period = Duration::from_millis(50);
    let w = truth.clone();
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(99)));
    let source = Box::new(
        GeneratorSource::new(move |_| Some((w.sample(&mut *rng.lock()), None)))
            .with_max_tuples(n_tuples),
    );
    let (graph, handles) = ParallelPcaApp::build(&cfg, source);
    println!(
        "running {n_engines} engines over {n_tuples} tuples (dim {dim}, ring sync @ {:?}) ...",
        cfg.sync_period
    );
    let t0 = std::time::Instant::now();
    let report = Engine::run(graph);
    let elapsed = t0.elapsed();

    println!("\nper-engine tuple counts (random load balancing):");
    for (name, snap) in &report.ops {
        if name.starts_with("pca-") {
            println!("  {name}: {} tuples", snap.tuples_in);
        }
    }
    let total = report.tuples_in_matching("pca-");
    println!("  total: {total} (source produced {n_tuples})");

    let merged = handles.hub.merged_estimate().expect("all engines reported");
    let par_dist = subspace_distance(&merged.basis, truth.basis()).expect("shapes");

    println!("\nsubspace recovery error (sin of max principal angle):");
    println!("  sequential single engine : {seq_dist:.4}");
    println!("  merged {n_engines}-way parallel    : {par_dist:.4}");
    println!(
        "\nthroughput: {:.0} tuples/s across the dataflow ({} ms wall)",
        total as f64 / elapsed.as_secs_f64(),
        elapsed.as_millis()
    );

    assert_eq!(total, n_tuples, "tuples were lost in the dataflow");
    assert!(
        par_dist < 0.2,
        "parallel estimate failed to converge: {par_dist}"
    );
    println!("\nOK: parallel partitioned run matches the sequential estimate.");
}
