//! Cluster-health monitoring — the paper's closing use case.
//!
//! "The system is useful for monitoring the modern cluster installations
//! that include thousands of servers, each having multiple parameters
//! monitored … our streaming PCA algorithm can indicate latent features and
//! correlations in cluster health, where a significant eigensystem
//! deviation could indicate a hardware failure."
//!
//! Simulates a rack of 40 servers × 4 sensors (CPU temperature, fan RPM,
//! disk temperature, power draw) whose readings co-vary with a global
//! load factor plus ambient temperature — a 2-dimensional latent structure.
//! Midway through, one server's fan bearing seizes (RPM collapses,
//! temperatures spike, decoupled from load). The robust streaming PCA
//! flags every post-failure reading as an outlier — and, because rejected
//! readings carry zero weight, the failure never contaminates the learned
//! health model, so the alarm persists instead of being "learned away".
//!
//! Run with: `cargo run --release --example cluster_health_monitor`

use astro_stream_pca::core::{PcaConfig, RobustPca};
use astro_stream_pca::linalg::rng::standard_normal;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

const SERVERS: usize = 40;
const SENSORS: usize = 4; // [cpu_temp, fan_rpm, disk_temp, power]
const DIM: usize = SERVERS * SENSORS;

/// One reading of the whole rack, driven by latent (load, ambient).
fn rack_reading(
    rng: &mut StdRng,
    load: f64,
    ambient: f64,
    failing: Option<usize>,
    severity: f64,
) -> Vec<f64> {
    let mut x = vec![0.0; DIM];
    for s in 0..SERVERS {
        let jitter = 0.5 * standard_normal(rng);
        let mut cpu_temp = 35.0 + ambient + 30.0 * load + jitter;
        let mut fan_rpm = 2000.0 + 6000.0 * load + 100.0 * standard_normal(rng);
        let mut disk_temp = 30.0 + ambient + 10.0 * load + 0.4 * standard_normal(rng);
        let power = 150.0 + 250.0 * load + 5.0 * standard_normal(rng);
        if failing == Some(s) {
            // Fan failure: RPM collapses, temperatures decouple from load.
            fan_rpm *= 1.0 - 0.7 * severity;
            cpu_temp += 25.0 * severity;
            disk_temp += 12.0 * severity;
        }
        x[s * SENSORS] = cpu_temp;
        x[s * SENSORS + 1] = fan_rpm / 100.0; // scale sensors comparably
        x[s * SENSORS + 2] = disk_temp;
        x[s * SENSORS + 3] = power / 10.0;
    }
    x
}

fn main() {
    let mut rng = StdRng::seed_from_u64(33);
    let cfg = PcaConfig::new(DIM, 3).with_memory(1500).with_init_size(80);
    let mut pca = RobustPca::new(cfg);

    let n_healthy = 4000;
    let n_failure = 1500;
    println!("monitoring {SERVERS} servers × {SENSORS} sensors ({DIM} dims) ...");

    // Phase 1: healthy operation.
    let mut healthy_flags = 0u64;
    for _ in 0..n_healthy {
        let load = 0.3 + 0.5 * rng.gen::<f64>();
        let ambient = 2.0 * standard_normal(&mut rng);
        let x = rack_reading(&mut rng, load, ambient, None, 0.0);
        if pca.update(&x).expect("finite").outlier {
            healthy_flags += 1;
        }
    }
    let eig = pca.eigensystem();
    println!("\nafter {n_healthy} healthy readings:");
    println!(
        "  leading eigenvalues: {:?}",
        eig.values
            .iter()
            .map(|v| (v * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );
    println!(
        "  variance captured by 2 latent factors: {:.1}%",
        100.0 * eig.variance_captured(2)
    );
    println!("  false alarms during healthy phase: {healthy_flags}/{n_healthy}");

    // Phase 2: server 17's fan bearing seizes (abrupt mechanical failure,
    // ramping to full severity within 20 readings).
    let mut first_flag = None;
    let mut failure_flags = 0u64;
    for i in 0..n_failure {
        let severity = ((i + 1) as f64 / 20.0).min(1.0);
        let load = 0.3 + 0.5 * rng.gen::<f64>();
        let ambient = 2.0 * standard_normal(&mut rng);
        let x = rack_reading(&mut rng, load, ambient, Some(17), severity);
        let out = pca.update(&x).expect("finite");
        if out.outlier {
            failure_flags += 1;
            if first_flag.is_none() {
                first_flag = Some(i);
            }
        }
    }

    match first_flag {
        Some(i) => {
            println!("\nfan failure on server 17 (onset over 20 readings):");
            println!("  first outlier flag at reading {i}");
            println!("  {failure_flags}/{n_failure} readings flagged during the failure phase");
            assert!(i < 50, "detection should be near-immediate (reading {i})");
            assert!(
                failure_flags > (n_failure as u64 * 8) / 10,
                "alarm should persist: only {failure_flags}/{n_failure} flagged"
            );
        }
        None => panic!("failure was never detected"),
    }
    assert!(
        healthy_flags < n_healthy / 50,
        "too many false alarms: {healthy_flags}"
    );
    println!("\nOK: latent health factors learned; degrading fan flagged early.");
}
