//! File-based batch-over-stream workflow: CSV in → parallel robust PCA →
//! outlier report + eigensystem snapshot out.
//!
//! Mirrors the paper's file-fed deployment ("local regular text or binary
//! file with CSV formatted tuples … can feed the data", with intermediate
//! results "periodically saved to the disk"): a survey extract is staged
//! as CSV (here: synthesized gappy galaxy spectra with `nan` missing
//! bins plus structured contaminants), streamed through the Fig. 2
//! application, and the run leaves behind (a) a per-tuple outcome CSV,
//! (b) a restorable eigensystem snapshot per engine.
//!
//! Run with: `cargo run --release --example csv_pipeline`

use astro_stream_pca::core::PcaConfig;
use astro_stream_pca::engine::{persist, AppConfig, ParallelPcaApp, SnapshotWriter};
use astro_stream_pca::spectra::contaminants::{self, ContaminantKind};
use astro_stream_pca::spectra::io;
use astro_stream_pca::spectra::normalize::unit_norm_masked;
use astro_stream_pca::spectra::GalaxyGenerator;
use astro_stream_pca::streams::ops::CsvFileSource;
use astro_stream_pca::streams::Engine;
use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;

const N_PIXELS: usize = 200;
const N_SPECTRA: usize = 4000;
const CONTAMINATION: f64 = 0.04;

fn main() {
    let work = std::env::temp_dir().join(format!("spca_csv_pipeline_{}", std::process::id()));
    std::fs::create_dir_all(&work).expect("workdir");
    let input_csv = work.join("survey_extract.csv");
    let snapshot_dir = work.join("snapshots");

    // --- Stage 1: synthesize the survey extract to disk. ---
    let gen = GalaxyGenerator::new(N_PIXELS, 0.2);
    let mut rng = StdRng::seed_from_u64(42);
    let mut rows = Vec::with_capacity(N_SPECTRA);
    let mut n_contaminants = 0;
    for _ in 0..N_SPECTRA {
        if rng.gen::<f64>() < CONTAMINATION {
            n_contaminants += 1;
            let kind = match rng.gen_range(0..3) {
                0 => ContaminantKind::Quasar,
                1 => ContaminantKind::Star,
                _ => ContaminantKind::Sky,
            };
            let mut flux = contaminants::draw(&mut rng, gen.grid(), kind);
            let mask = vec![true; N_PIXELS];
            unit_norm_masked(&mut flux, &mask);
            rows.push((flux, mask));
        } else {
            let mut s = gen.sample_with_coverage(&mut rng);
            unit_norm_masked(&mut s.flux, &s.mask);
            rows.push((s.flux, s.mask));
        }
    }
    io::write_csv_masked(&input_csv, &rows).expect("write extract");
    println!(
        "staged {} spectra ({} contaminants) to {}",
        N_SPECTRA,
        n_contaminants,
        input_csv.display()
    );

    // --- Stage 2: stream the file through the parallel application. ---
    let pca = PcaConfig::new(N_PIXELS, 4)
        .with_memory(5000)
        .with_init_size(60)
        .with_extra(2);
    let mut cfg = AppConfig::new(3, pca);
    cfg.emit_outcomes = true;
    cfg.snapshot_dir = Some(snapshot_dir.clone());
    let source = Box::new(CsvFileSource::new(&input_csv));
    let (graph, handles) = ParallelPcaApp::build(&cfg, source);
    let report = Engine::run(graph);
    let consumed = report.tuples_in_matching("pca-");
    println!("streamed {consumed} tuples through 3 engines");

    // --- Stage 3: persist the outlier report; verify the snapshot. ---
    let outcomes = handles.outcomes.expect("outcome feed enabled");
    let rows: Vec<Vec<f64>> = outcomes
        .lock()
        .iter()
        .map(|t| t.values.as_ref().clone())
        .collect();
    let flagged = rows.iter().filter(|r| r[4] > 0.5).count();
    let report_csv = work.join("outlier_report.csv");
    io::write_csv(&report_csv, &rows).expect("write report");
    println!(
        "outlier report: {} rows, {} flagged → {}",
        rows.len(),
        flagged,
        report_csv.display()
    );

    let snap = persist::read_snapshot(&SnapshotWriter::latest_path(&snapshot_dir, 0))
        .expect("snapshot readable");
    println!(
        "engine 0 snapshot: {} obs folded in, σ² = {:.3e}, λ = {:?}",
        snap.n_obs,
        snap.sigma2,
        snap.values
            .iter()
            .map(|v| (v * 1e4).round() / 1e4)
            .collect::<Vec<_>>()
    );

    assert_eq!(consumed as usize, N_SPECTRA, "tuples lost in the pipeline");
    assert!(
        flagged as f64 >= 0.5 * n_contaminants as f64,
        "too few contaminants flagged: {flagged}/{n_contaminants}"
    );
    let merged = handles.hub.merged_estimate().expect("engines reported");
    assert!(merged.variance_captured(4) > 0.5);

    std::fs::remove_dir_all(&work).ok();
    println!("\nOK: file-fed parallel run produced outlier report + restorable snapshots.");
}
