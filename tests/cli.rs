//! Black-box tests of the `spca` binary's argument handling: unknown
//! flags must be rejected with a nonzero exit naming the flag, never
//! silently ignored.

use std::process::Command;

fn spca(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_spca"))
        .args(args)
        .output()
        .expect("spawn spca")
}

#[test]
fn unknown_flag_is_rejected_and_named() {
    for (cmd, bogus) in [
        ("generate", "--outt"),
        ("run", "--engnes"),
        ("inspect", "--snapshots"),
        ("simulate", "--placment"),
    ] {
        let out = spca(&[cmd, bogus, "x"]);
        assert!(
            !out.status.success(),
            "{cmd} {bogus}: expected nonzero exit"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(bogus),
            "{cmd}: stderr must name the offending flag, got: {stderr}"
        );
        assert!(
            stderr.contains(cmd),
            "{cmd}: stderr must name the subcommand, got: {stderr}"
        );
    }
}

#[test]
fn flag_valid_for_one_subcommand_rejected_on_another() {
    // --seed belongs to `generate`, not `simulate`.
    let out = spca(&["simulate", "--seed", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed"));
}

#[test]
fn repeated_flag_is_rejected() {
    let out = spca(&["generate", "--out", "a.csv", "--out", "b.csv"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than once"), "got: {stderr}");
}

#[test]
fn missing_value_is_rejected() {
    let out = spca(&["generate", "--out"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing a value"));
}

#[test]
fn zero_batch_is_rejected() {
    let out = spca(&["run", "--input", "nonexistent.csv", "--batch", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--batch"));
}

#[test]
fn help_exits_zero() {
    let out = spca(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unknown flags are rejected"));
    assert!(stdout.contains("--batch"));
}

#[test]
fn bad_fault_spec_is_rejected_and_named() {
    // Spec validation happens before any input I/O, so no file is needed.
    for bad in ["panic@engine1", "jitter@engine0:5", "drop@split:3"] {
        let out = spca(&["run", "--input", "nonexistent.csv", "--faults", bad]);
        assert!(!out.status.success(), "'{bad}': expected nonzero exit");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--faults"),
            "'{bad}': stderr must name the flag, got: {stderr}"
        );
        assert!(
            stderr.contains(bad),
            "'{bad}': stderr must echo the offending entry, got: {stderr}"
        );
    }
}

#[test]
fn fault_flags_pass_the_allow_list() {
    // A valid spec with a missing input must fail on the *input*, proving
    // --faults and --snapshot-dir themselves were accepted.
    let out = spca(&[
        "run",
        "--input",
        "nonexistent.csv",
        "--faults",
        "panic@engine1:5000",
        "--snapshot-dir",
        "/tmp/does-not-matter",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not exist"),
        "expected the input-file error, got: {stderr}"
    );
    assert!(
        !stderr.contains("unknown flag"),
        "fault flags must be allow-listed, got: {stderr}"
    );
}

#[test]
fn repeated_fault_flag_is_rejected() {
    let out = spca(&[
        "run",
        "--faults",
        "panic@engine0:1",
        "--faults",
        "panic@engine1:1",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than once"), "got: {stderr}");
}

#[test]
fn backfill_unknown_and_duplicate_flags_rejected() {
    let out = spca(&["backfill", "--partitons", "4"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--partitons"), "got: {stderr}");
    assert!(stderr.contains("backfill"), "got: {stderr}");

    let out = spca(&["backfill", "--workers", "2", "--workers", "4"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than once"), "got: {stderr}");

    // `run`-only flags do not leak into backfill's allow list.
    let out = spca(&["backfill", "--sync", "ring"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--sync"));
}

#[test]
fn backfill_flags_parse_and_missing_input_is_the_only_error() {
    // All backfill flags accepted: the failure must be the missing input
    // file, not flag parsing.
    let out = spca(&[
        "backfill",
        "--input",
        "nonexistent.csv",
        "--partitions",
        "4",
        "--state-dir",
        "/tmp/does-not-matter",
        "--workers",
        "2",
        "--components",
        "3",
        "--memory",
        "1000",
        "--out",
        "merged.snapshot",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not exist"),
        "expected the input error, got: {stderr}"
    );
    assert!(!stderr.contains("unknown flag"), "got: {stderr}");
}

#[test]
fn backfill_rejects_bad_flag_values() {
    let out = spca(&["backfill", "--input", "x.csv", "--partitions", "abc"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--partitions"), "got: {stderr}");

    let out = spca(&["backfill", "--input", "x.csv", "--partitions", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--partitions"));

    let out = spca(&["backfill", "--workers"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing a value"));
}

#[test]
fn backfill_requires_input() {
    let out = spca(&["backfill", "--partitions", "4"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--input"));
}

#[test]
fn serve_unknown_and_duplicate_flags_rejected() {
    let out = spca(&["serve", "--adddr", "127.0.0.1:8080"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--adddr"), "got: {stderr}");
    assert!(stderr.contains("serve"), "got: {stderr}");

    let out = spca(&[
        "serve",
        "--addr",
        "127.0.0.1:8080",
        "--addr",
        "127.0.0.1:8081",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than once"), "got: {stderr}");
}

#[test]
fn serve_requires_addr() {
    let out = spca(&["serve", "--input", "nonexistent.csv"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--addr"));
}

#[test]
fn serve_rejects_bad_bind_address() {
    // Address validation happens before any ingest I/O, so a bad port is
    // reported even though the input does not exist either.
    for bad in ["127.0.0.1:notaport", "127.0.0.1", "localhost:8080"] {
        let out = spca(&["serve", "--addr", bad, "--input", "nonexistent.csv"]);
        assert!(!out.status.success(), "addr '{bad}' must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("--addr"), "got: {stderr}");
        assert!(stderr.contains("IP:PORT"), "got: {stderr}");
    }
}

#[test]
fn serve_rejects_bad_flag_values() {
    let out = spca(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "0",
        "--input",
        "nonexistent.csv",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--threads"));

    let out = spca(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--rate-limit",
        "-5",
        "--input",
        "nonexistent.csv",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--rate-limit"));
}

#[test]
fn serve_thread_pools_beyond_reader_slots_rejected() {
    // Each server worker claims one epoch-store reader slot (64 total);
    // an oversized pool must be a CLI error, not a panic at server start.
    let out = spca(&[
        "serve",
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "65",
        "--input",
        "nonexistent.csv",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--threads"), "got: {stderr}");
    assert!(stderr.contains("at most 64"), "got: {stderr}");

    let out = spca(&[
        "run",
        "--input",
        "nonexistent.csv",
        "--serve",
        "127.0.0.1:0",
        "--serve-threads",
        "65",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--serve-threads"), "got: {stderr}");
    assert!(stderr.contains("at most 64"), "got: {stderr}");
}

#[test]
fn run_serve_flag_validates_address_and_dependents() {
    let out = spca(&[
        "run",
        "--input",
        "nonexistent.csv",
        "--serve",
        "1.2.3.4:bad",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--serve"), "got: {stderr}");
    assert!(stderr.contains("IP:PORT"), "got: {stderr}");

    // Serving-only flags are rejected when --serve is absent, same policy
    // as every other inapplicable-flag case.
    for flag in ["--serve-threads", "--rate-limit", "--publish-every"] {
        let out = spca(&["run", "--input", "nonexistent.csv", flag, "4"]);
        assert!(!out.status.success(), "{flag} without --serve must fail");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains("requires --serve"), "{flag}: got {stderr}");
    }
}

#[test]
fn run_elastic_flags_validate_before_any_work() {
    // A zero monitoring epoch is meaningless.
    let out = spca(&["run", "--input", "nonexistent.csv", "--elastic", "0"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--elastic"), "got: {stderr}");
    assert!(stderr.contains("at least 1 ms"), "got: {stderr}");

    // --max-engines is an elastic-only knob.
    let out = spca(&["run", "--input", "nonexistent.csv", "--max-engines", "4"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("requires --elastic"), "got: {stderr}");

    // The ceiling must cover the starting fleet.
    let out = spca(&[
        "run",
        "--input",
        "nonexistent.csv",
        "--engines",
        "4",
        "--elastic",
        "200",
        "--max-engines",
        "2",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("below the starting fleet"), "got: {stderr}");
}

#[test]
fn backfill_cold_then_warm_round_trip() {
    let dir = std::env::temp_dir().join(format!("spca-cli-backfill-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("corpus.csv");
    let gen = spca(&[
        "generate",
        "--out",
        csv.to_str().unwrap(),
        "--n",
        "400",
        "--pixels",
        "24",
        "--seed",
        "9",
    ]);
    assert!(gen.status.success());

    let store = dir.join("store");
    let run = |out_name: &str| {
        spca(&[
            "backfill",
            "--input",
            csv.to_str().unwrap(),
            "--partitions",
            "4",
            "--state-dir",
            store.to_str().unwrap(),
            "--workers",
            "2",
            "--components",
            "3",
            "--out",
            dir.join(out_name).to_str().unwrap(),
        ])
    };
    let cold = run("cold.snapshot");
    assert!(
        cold.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&cold.stderr)
    );
    let cold_out = String::from_utf8_lossy(&cold.stdout);
    assert!(
        cold_out.contains("0 cache hits, 4 computed, 0 quarantined"),
        "{cold_out}"
    );

    let warm = run("warm.snapshot");
    assert!(warm.status.success());
    let warm_out = String::from_utf8_lossy(&warm.stdout);
    assert!(
        warm_out.contains("4 cache hits, 0 computed, 0 quarantined"),
        "{warm_out}"
    );

    let a = std::fs::read(dir.join("cold.snapshot")).unwrap();
    let b = std::fs::read(dir.join("warm.snapshot")).unwrap();
    assert_eq!(a, b, "cold and warm merged snapshots must be bit-identical");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn valid_generate_round_trips() {
    let dir = std::env::temp_dir().join(format!("spca-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_csv = dir.join("tiny.csv");
    let out = spca(&[
        "generate",
        "--out",
        out_csv.to_str().unwrap(),
        "--n",
        "5",
        "--pixels",
        "16",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out_csv.exists());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn distributed_subcommands_reject_unknown_and_duplicate_flags() {
    for (cmd, bogus) in [("worker", "--cordinator"), ("coordinator", "--workerz")] {
        let out = spca(&[cmd, bogus, "x"]);
        assert!(!out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(stderr.contains(bogus), "{cmd}: got: {stderr}");
        assert!(stderr.contains(cmd), "{cmd}: got: {stderr}");
    }
    let out = spca(&[
        "worker",
        "--index",
        "0",
        "--index",
        "1",
        "--coordinator",
        "127.0.0.1:1",
        "--data",
        "127.0.0.1:1",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than once"), "got: {stderr}");

    let out = spca(&["coordinator", "--workers"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing a value"));
}

#[test]
fn worker_rejects_malformed_addresses() {
    for bad in ["localhost:99", "10.0.0.1", "1.2.3.4:notaport", "[::1]"] {
        let out = spca(&[
            "worker",
            "--coordinator",
            bad,
            "--index",
            "0",
            "--data",
            "127.0.0.1:1",
        ]);
        assert!(!out.status.success(), "addr '{bad}' must be rejected");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("as IP:PORT") && stderr.contains(bad),
            "addr '{bad}': got: {stderr}"
        );
    }
}

#[test]
fn worker_accepts_bracketed_ipv6_addresses() {
    // A well-formed [addr]:port must get past address validation; the
    // invocation then dies on the unparsable --index, proving the
    // address itself was accepted without dialing anything.
    let out = spca(&[
        "worker",
        "--coordinator",
        "[::1]:7400",
        "--index",
        "x",
        "--data",
        "[::1]:7401",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--index") && !stderr.contains("as IP:PORT"),
        "got: {stderr}"
    );
}

#[test]
fn worker_requires_its_mandatory_flags() {
    for (args, missing) in [
        (
            vec!["worker", "--index", "0", "--data", "127.0.0.1:1"],
            "--coordinator",
        ),
        (
            vec![
                "worker",
                "--coordinator",
                "127.0.0.1:1",
                "--data",
                "127.0.0.1:1",
            ],
            "--index",
        ),
        (
            vec!["worker", "--coordinator", "127.0.0.1:1", "--index", "0"],
            "--data",
        ),
    ] {
        let out = spca(&args);
        assert!(!out.status.success());
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(missing),
            "expected '{missing}' in: {stderr}"
        );
    }
}

#[test]
fn coordinator_validates_listen_address_before_any_networking() {
    let dir = std::env::temp_dir().join(format!("spca-coord-cli-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let csv = dir.join("tiny.csv");
    let gen = spca(&[
        "generate",
        "--out",
        csv.to_str().unwrap(),
        "--n",
        "8",
        "--pixels",
        "16",
    ]);
    assert!(gen.status.success());

    let out = spca(&[
        "coordinator",
        "--input",
        csv.to_str().unwrap(),
        "--snapshots",
        dir.join("snaps").to_str().unwrap(),
        "--workers",
        "2",
        "--listen",
        "not-an-address",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--listen") && stderr.contains("as IP:PORT"),
        "got: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
