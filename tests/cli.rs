//! Black-box tests of the `spca` binary's argument handling: unknown
//! flags must be rejected with a nonzero exit naming the flag, never
//! silently ignored.

use std::process::Command;

fn spca(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_spca"))
        .args(args)
        .output()
        .expect("spawn spca")
}

#[test]
fn unknown_flag_is_rejected_and_named() {
    for (cmd, bogus) in [
        ("generate", "--outt"),
        ("run", "--engnes"),
        ("inspect", "--snapshots"),
        ("simulate", "--placment"),
    ] {
        let out = spca(&[cmd, bogus, "x"]);
        assert!(
            !out.status.success(),
            "{cmd} {bogus}: expected nonzero exit"
        );
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains(bogus),
            "{cmd}: stderr must name the offending flag, got: {stderr}"
        );
        assert!(
            stderr.contains(cmd),
            "{cmd}: stderr must name the subcommand, got: {stderr}"
        );
    }
}

#[test]
fn flag_valid_for_one_subcommand_rejected_on_another() {
    // --seed belongs to `generate`, not `simulate`.
    let out = spca(&["simulate", "--seed", "1"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seed"));
}

#[test]
fn repeated_flag_is_rejected() {
    let out = spca(&["generate", "--out", "a.csv", "--out", "b.csv"]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than once"), "got: {stderr}");
}

#[test]
fn missing_value_is_rejected() {
    let out = spca(&["generate", "--out"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("missing a value"));
}

#[test]
fn zero_batch_is_rejected() {
    let out = spca(&["run", "--input", "nonexistent.csv", "--batch", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--batch"));
}

#[test]
fn help_exits_zero() {
    let out = spca(&["help"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("unknown flags are rejected"));
    assert!(stdout.contains("--batch"));
}

#[test]
fn bad_fault_spec_is_rejected_and_named() {
    // Spec validation happens before any input I/O, so no file is needed.
    for bad in ["panic@engine1", "jitter@engine0:5", "drop@split:3"] {
        let out = spca(&["run", "--input", "nonexistent.csv", "--faults", bad]);
        assert!(!out.status.success(), "'{bad}': expected nonzero exit");
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert!(
            stderr.contains("--faults"),
            "'{bad}': stderr must name the flag, got: {stderr}"
        );
        assert!(
            stderr.contains(bad),
            "'{bad}': stderr must echo the offending entry, got: {stderr}"
        );
    }
}

#[test]
fn fault_flags_pass_the_allow_list() {
    // A valid spec with a missing input must fail on the *input*, proving
    // --faults and --snapshot-dir themselves were accepted.
    let out = spca(&[
        "run",
        "--input",
        "nonexistent.csv",
        "--faults",
        "panic@engine1:5000",
        "--snapshot-dir",
        "/tmp/does-not-matter",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("does not exist"),
        "expected the input-file error, got: {stderr}"
    );
    assert!(
        !stderr.contains("unknown flag"),
        "fault flags must be allow-listed, got: {stderr}"
    );
}

#[test]
fn repeated_fault_flag_is_rejected() {
    let out = spca(&[
        "run",
        "--faults",
        "panic@engine0:1",
        "--faults",
        "panic@engine1:1",
    ]);
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("more than once"), "got: {stderr}");
}

#[test]
fn valid_generate_round_trips() {
    let dir = std::env::temp_dir().join(format!("spca-cli-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out_csv = dir.join("tiny.csv");
    let out = spca(&[
        "generate",
        "--out",
        out_csv.to_str().unwrap(),
        "--n",
        "5",
        "--pixels",
        "16",
    ]);
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out_csv.exists());
    std::fs::remove_dir_all(&dir).ok();
}
