//! Cross-crate integration tests: the full system exercised end to end.

use astro_stream_pca::core::metrics::subspace_distance;
use astro_stream_pca::core::{batch, PcaConfig, RhoKind, RobustPca};
use astro_stream_pca::engine::{AppConfig, ParallelPcaApp, SyncStrategy};
use astro_stream_pca::spectra::outliers::{OutlierInjector, OutlierKind};
use astro_stream_pca::spectra::{GalaxyGenerator, PlantedSubspace};
use astro_stream_pca::streams::ops::{GeneratorSource, SplitStrategy};
use astro_stream_pca::streams::Engine;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;
use std::time::Duration;

const D: usize = 32;
const RANK: usize = 3;

fn pca_cfg() -> PcaConfig {
    PcaConfig::new(D, RANK).with_memory(1000).with_init_size(40)
}

fn planted_source(
    n: u64,
    seed: u64,
    outlier_rate: f64,
) -> Box<dyn astro_stream_pca::streams::Operator> {
    let w = PlantedSubspace::new(D, RANK, 0.05);
    let inj = OutlierInjector::new(outlier_rate).only(OutlierKind::CosmicRay);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed)));
    Box::new(
        GeneratorSource::new(move |_| {
            let mut g = rng.lock();
            let mut x = w.sample(&mut *g);
            inj.maybe_contaminate(&mut *g, &mut x);
            Some((x, None))
        })
        .with_max_tuples(n),
    )
}

#[test]
fn parallel_run_recovers_planted_subspace() {
    let mut cfg = AppConfig::new(4, pca_cfg());
    cfg.sync_period = Duration::from_millis(25);
    let (g, h) = ParallelPcaApp::build(&cfg, planted_source(8000, 1, 0.0));
    let report = Engine::run(g);
    assert_eq!(report.tuples_in_matching("pca-"), 8000, "tuple loss");
    let merged = h.hub.merged_estimate().unwrap();
    let truth = PlantedSubspace::new(D, RANK, 0.05);
    let dist = subspace_distance(&merged.basis, truth.basis()).unwrap();
    assert!(dist < 0.2, "merged subspace error {dist}");
}

#[test]
fn parallel_run_with_contamination_stays_robust() {
    let mut cfg = AppConfig::new(3, pca_cfg());
    cfg.sync_period = Duration::from_millis(25);
    cfg.emit_outcomes = true;
    let (g, h) = ParallelPcaApp::build(&cfg, planted_source(6000, 2, 0.05));
    Engine::run(g);
    let merged = h.hub.merged_estimate().unwrap();
    let truth = PlantedSubspace::new(D, RANK, 0.05);
    let dist = subspace_distance(&merged.basis, truth.basis()).unwrap();
    assert!(dist < 0.25, "contaminated merged error {dist}");
    // A healthy share of the ~5% injected outliers must be flagged in the
    // outcome feed.
    let outcomes = h.outcomes.unwrap();
    let flagged = outcomes.lock().iter().filter(|r| r.values[4] > 0.5).count();
    assert!(flagged > 100, "only {flagged} outliers flagged");
}

#[test]
fn every_sync_strategy_converges() {
    for sync in [
        SyncStrategy::Ring,
        SyncStrategy::Broadcast,
        SyncStrategy::Groups(2),
        SyncStrategy::None,
    ] {
        let mut cfg = AppConfig::new(4, pca_cfg());
        cfg.sync = sync;
        cfg.sync_period = Duration::from_millis(20);
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(6000, 3, 0.0));
        Engine::run(g);
        assert_eq!(h.hub.engines_reporting(), 4, "{sync:?}: missing snapshots");
        let merged = h.hub.merged_estimate().unwrap();
        let truth = PlantedSubspace::new(D, RANK, 0.05);
        let dist = subspace_distance(&merged.basis, truth.basis()).unwrap();
        assert!(dist < 0.3, "{sync:?}: merged error {dist}");
    }
}

#[test]
fn every_split_strategy_delivers_all_tuples() {
    for split in [
        SplitStrategy::Random,
        SplitStrategy::RoundRobin,
        SplitStrategy::LeastLoaded,
    ] {
        let mut cfg = AppConfig::new(3, pca_cfg());
        cfg.split = split;
        let (g, _h) = ParallelPcaApp::build(&cfg, planted_source(3000, 4, 0.0));
        let report = Engine::run(g);
        assert_eq!(
            report.tuples_in_matching("pca-"),
            3000,
            "{split:?} lost tuples"
        );
    }
}

#[test]
fn fused_and_distributed_agree_statistically() {
    let run = |fuse: bool| {
        let mut cfg = AppConfig::new(3, pca_cfg());
        cfg.fuse = fuse;
        cfg.sync_period = Duration::from_millis(20);
        let (g, h) = ParallelPcaApp::build(&cfg, planted_source(5000, 5, 0.0));
        Engine::run(g);
        h.hub.merged_estimate().unwrap()
    };
    let fused = run(true);
    let distributed = run(false);
    // Compare the reported p components; the extra gap-correction
    // components track noise directions and are not comparable.
    let d = subspace_distance(
        &fused.truncated(RANK).basis,
        &distributed.truncated(RANK).basis,
    )
    .unwrap();
    assert!(d < 0.2, "fusion changed the statistics: {d}");
    // Counts are only comparable as lower bounds: mid-stream merges (whose
    // timing differs between placements) double-count shared history.
    assert!(fused.n_obs >= 5000 && distributed.n_obs >= 5000);
}

#[test]
fn gappy_galaxy_stream_through_parallel_app() {
    // End-to-end: masked spectra flow through split + engines and converge.
    let n_pixels = 80;
    let gen = GalaxyGenerator::new(n_pixels, 0.2);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(6)));
    let gen2 = gen.clone();
    let source = Box::new(
        GeneratorSource::new(move |_| {
            let mut g = rng.lock();
            let mut s = gen2.sample_with_coverage(&mut *g);
            astro_stream_pca::spectra::normalize::unit_norm_masked(&mut s.flux, &s.mask);
            Some((s.flux, Some(s.mask)))
        })
        .with_max_tuples(4000),
    );
    let pca = PcaConfig::new(n_pixels, 3)
        .with_memory(2000)
        .with_init_size(50)
        .with_extra(2);
    let mut cfg = AppConfig::new(2, pca);
    cfg.sync_period = Duration::from_millis(30);
    let (g, h) = ParallelPcaApp::build(&cfg, source);
    Engine::run(g);
    let merged = h.hub.merged_estimate().unwrap();
    merged.check_invariants().unwrap();
    assert_eq!(merged.n_obs, 4000);
    // The galaxy manifold is low-rank: 3 components capture most variance.
    assert!(
        merged.variance_captured(3) > 0.6,
        "variance captured {}",
        merged.variance_captured(3)
    );
}

#[test]
fn streaming_approximates_batch_robust() {
    // The streaming robust estimator should approach the Maronna batch
    // solution on a fixed contaminated dataset.
    let truth = PlantedSubspace::new(D, RANK, 0.05);
    let inj = OutlierInjector::new(0.08).only(OutlierKind::CosmicRay);
    let mut rng = StdRng::seed_from_u64(7);
    let data: Vec<Vec<f64>> = (0..4000)
        .map(|_| {
            let mut x = truth.sample(&mut rng);
            inj.maybe_contaminate(&mut rng, &mut x);
            x
        })
        .collect();

    let (batch_eig, _) = batch::batch_robust_pca(
        &data,
        RANK,
        &astro_stream_pca::core::rho::Bisquare::default(),
        0.5,
        40,
    )
    .unwrap();

    let mut streaming = RobustPca::new(pca_cfg().with_rho(RhoKind::Bisquare(9.0)));
    for x in &data {
        streaming.update(x).unwrap();
    }
    let s_eig = streaming.eigensystem();
    let dist = subspace_distance(&s_eig.basis, &batch_eig.basis).unwrap();
    assert!(dist < 0.2, "streaming vs batch robust distance {dist}");
}

#[test]
fn stop_midstream_yields_usable_partial_result() {
    // The in-flight results story: stop the app early, the hub still holds
    // a usable estimate.
    let cfg = AppConfig::new(2, pca_cfg());
    let w = PlantedSubspace::new(D, RANK, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(8)));
    let source = Box::new(GeneratorSource::new(move |_| {
        Some((w.sample(&mut *rng.lock()), None))
    })); // unbounded
    let (g, h) = ParallelPcaApp::build(&cfg, source);
    let running = Engine::start(g);
    // Let it process for a while, then stop cooperatively.
    std::thread::sleep(Duration::from_millis(400));
    running.stop();
    let report = running.join();
    let n = report.tuples_in_matching("pca-");
    assert!(n > 100, "too few tuples before stop: {n}");
    let merged = h.hub.merged_estimate().unwrap();
    // Mid-stream ring merges double-count shared history; the merged count
    // is an upper bound on distinct observations.
    assert!(merged.n_obs >= n);
    merged.check_invariants().unwrap();
}

#[test]
fn malformed_tuples_are_dropped_not_fatal() {
    // Failure injection: 10% of tuples are malformed (wrong dimension or
    // NaN). Engines must drop them, keep running, and converge on the
    // valid remainder.
    let w = PlantedSubspace::new(D, RANK, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(21)));
    let source = Box::new(
        GeneratorSource::new(move |seq| {
            let mut g = rng.lock();
            let x = match seq % 10 {
                7 => vec![1.0; D / 2], // wrong dimension
                8 => {
                    let mut bad = w.sample(&mut *g);
                    bad[3] = f64::NAN;
                    bad
                }
                _ => w.sample(&mut *g),
            };
            Some((x, None))
        })
        .with_max_tuples(5000),
    );
    let mut cfg = AppConfig::new(2, pca_cfg());
    cfg.sync = SyncStrategy::None;
    let (g, h) = ParallelPcaApp::build(&cfg, source);
    let report = Engine::run(g);
    // All 5000 tuples were delivered to engines; 20% were dropped inside.
    assert_eq!(report.tuples_in_matching("pca-"), 5000);
    let merged = h.hub.merged_estimate().unwrap();
    assert_eq!(merged.n_obs, 4000, "exactly the valid tuples processed");
    let truth = PlantedSubspace::new(D, RANK, 0.05);
    let dist = subspace_distance(&merged.truncated(RANK).basis, truth.basis()).unwrap();
    assert!(
        dist < 0.2,
        "convergence impaired by malformed tuples: {dist}"
    );
}

#[test]
fn modeled_network_delay_runs_correctly() {
    // The LinkKind::Network path with a real (small) per-message overhead:
    // semantics identical, just slower.
    let mut cfg = AppConfig::new(2, pca_cfg());
    cfg.network_delay_us = 20;
    cfg.sync = SyncStrategy::None;
    let (g, h) = ParallelPcaApp::build(&cfg, planted_source(800, 22, 0.0));
    let report = Engine::run(g);
    assert_eq!(report.tuples_in_matching("pca-"), 800);
    // Data links carried the traffic and accounted bytes.
    let data_bytes: u64 = report
        .links
        .iter()
        .filter(|l| l.from == "split")
        .map(|l| l.bytes())
        .sum();
    assert!(
        data_bytes > 800 * (D as u64 * 8),
        "bytes under-accounted: {data_bytes}"
    );
    assert_eq!(h.hub.engines_reporting(), 2);
}

#[test]
fn quarantine_captures_flagged_observations_verbatim() {
    // Outliers must land in the quarantine feed with their original values
    // — available "for further processing" — while the eigensystem ignores
    // them.
    let w = PlantedSubspace::new(D, RANK, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(23)));
    let source = Box::new(
        GeneratorSource::new(move |seq| {
            let mut g = rng.lock();
            if seq % 25 == 24 {
                // A marked spike we can recognize downstream.
                let mut x = vec![0.0; D];
                x[9] = 500.0 + seq as f64;
                Some((x, None))
            } else {
                Some((w.sample(&mut *g), None))
            }
        })
        .with_max_tuples(5000),
    );
    let mut cfg = AppConfig::new(2, pca_cfg());
    cfg.quarantine = true;
    cfg.sync = SyncStrategy::None;
    let (g, h) = ParallelPcaApp::build(&cfg, source);
    Engine::run(g);
    let q = h.quarantined.unwrap();
    let quarantined = q.lock();
    // 200 spikes injected; warm-up swallows a few per engine.
    assert!(
        quarantined.len() >= 150,
        "only {} quarantined",
        quarantined.len()
    );
    // Verbatim forwarding: the spike signature survives.
    assert!(quarantined.iter().all(|t| t.values[9] >= 500.0));
    // And the model ignored them.
    let truth = PlantedSubspace::new(D, RANK, 0.05);
    let merged = h.hub.merged_estimate().unwrap();
    let dist = subspace_distance(&merged.truncated(RANK).basis, truth.basis()).unwrap();
    assert!(dist < 0.2, "spikes contaminated the estimate: {dist}");
}

#[test]
fn tcp_fed_parallel_application() {
    // Full network deployment shape: a producer process (graph) ships
    // tuples over TCP; the analysis application ingests them through a
    // TcpSource and runs the usual split + engines.
    use astro_stream_pca::streams::ops::{TcpSink, TcpSource};
    use astro_stream_pca::streams::{GraphBuilder, PortKind};

    let tcp_in = TcpSource::listen("127.0.0.1:0").expect("bind");
    let addr = tcp_in.local_addr().expect("bound");

    let cfg = AppConfig::new(2, pca_cfg());
    let (g, h) = ParallelPcaApp::build(&cfg, Box::new(tcp_in));
    let consumer = Engine::start(g);

    // Producer graph in this same process.
    let w = PlantedSubspace::new(D, RANK, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(24)));
    let mut p = GraphBuilder::new();
    let gen = p.add_source(
        "gen",
        Box::new(
            GeneratorSource::new(move |_| Some((w.sample(&mut *rng.lock()), None)))
                .with_max_tuples(2500),
        ),
    );
    let out = p.add_op("tcp-out", Box::new(TcpSink::connect(addr)));
    p.connect(gen, 0, out, PortKind::Data);
    Engine::run(p);

    let report = consumer.join();
    assert_eq!(
        report.tuples_in_matching("pca-"),
        2500,
        "tuples lost over TCP"
    );
    let merged = h.hub.merged_estimate().unwrap();
    let truth = PlantedSubspace::new(D, RANK, 0.05);
    let dist = subspace_distance(&merged.truncated(RANK).basis, truth.basis()).unwrap();
    assert!(dist < 0.25, "TCP-fed estimate off: {dist}");
}
