//! Integration tests for the operational features: snapshot persistence,
//! warm start, and the profile-guided fusion loop.

use astro_stream_pca::core::metrics::subspace_distance;
use astro_stream_pca::core::PcaConfig;
use astro_stream_pca::engine::{persist, AppConfig, ParallelPcaApp, SnapshotWriter, SyncStrategy};
use astro_stream_pca::spectra::PlantedSubspace;
use astro_stream_pca::streams::ops::GeneratorSource;
use astro_stream_pca::streams::optimize::{suggest_fusion, FusionPolicy};
use astro_stream_pca::streams::Engine;
use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

const D: usize = 24;
const RANK: usize = 2;

fn pca_cfg() -> PcaConfig {
    PcaConfig::new(D, RANK).with_memory(1000).with_init_size(30)
}

fn source(n: u64, seed: u64) -> Box<dyn astro_stream_pca::streams::Operator> {
    let w = PlantedSubspace::new(D, RANK, 0.05);
    let rng = Arc::new(Mutex::new(StdRng::seed_from_u64(seed)));
    Box::new(
        GeneratorSource::new(move |_| Some((w.sample(&mut *rng.lock()), None))).with_max_tuples(n),
    )
}

fn tmpdir(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("spca_it_{}_{name}", std::process::id()));
    p
}

#[test]
fn snapshots_persist_and_warm_start_resumes() {
    let dir = tmpdir("warm");
    // Phase 1: run, persisting snapshots.
    {
        let mut cfg = AppConfig::new(2, pca_cfg());
        cfg.snapshot_dir = Some(dir.clone());
        cfg.sync = SyncStrategy::None;
        let (g, _h) = ParallelPcaApp::build(&cfg, source(2000, 1));
        Engine::run(g);
    }
    let snap_path = SnapshotWriter::latest_path(&dir, 0);
    let restored = persist::read_snapshot(&snap_path).expect("snapshot written");
    assert!(restored.n_obs > 0);
    restored.check_invariants().unwrap();

    // Phase 2: warm-start a fresh application from engine 0's state.
    let mut cfg = AppConfig::new(2, pca_cfg());
    cfg.warm_start = Some(restored.clone());
    cfg.sync = SyncStrategy::None;
    let (g, h) = ParallelPcaApp::build(&cfg, source(500, 2));
    Engine::run(g);
    let merged = h.hub.merged_estimate().unwrap();
    // Warm-started engines carry the restored history forward.
    assert!(merged.n_obs >= restored.n_obs + 500);
    let truth = PlantedSubspace::new(D, RANK, 0.05);
    let dist = subspace_distance(&merged.truncated(RANK).basis, truth.basis()).unwrap();
    assert!(dist < 0.2, "warm-started estimate off: {dist}");
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn warm_start_skips_warmup_entirely() {
    // A warm-started engine must produce initialized outcomes from the
    // very first tuple (no warm-up buffering).
    let dir = tmpdir("skip");
    {
        let mut cfg = AppConfig::new(1, pca_cfg());
        cfg.snapshot_dir = Some(dir.clone());
        let (g, _h) = ParallelPcaApp::build(&cfg, source(1000, 3));
        Engine::run(g);
    }
    let restored = persist::read_snapshot(&SnapshotWriter::latest_path(&dir, 0)).unwrap();
    let mut cfg = AppConfig::new(1, pca_cfg());
    cfg.warm_start = Some(restored);
    cfg.emit_outcomes = true;
    let (g, h) = ParallelPcaApp::build(&cfg, source(100, 4));
    Engine::run(g);
    let outcomes = h.outcomes.unwrap();
    // Every tuple (not just post-warm-up ones) produced an outcome row.
    assert_eq!(outcomes.lock().len(), 100);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn fusion_advice_loop_improves_or_holds() {
    // Profile an unfused run, take the advisor's suggestion, apply it, and
    // confirm the fused re-run still processes everything (and that the
    // advisor targeted the hot data path).
    let build = || {
        let mut cfg = AppConfig::new(2, pca_cfg());
        cfg.sync = SyncStrategy::None;
        ParallelPcaApp::build(&cfg, source(3000, 5))
    };
    let (g, _h) = build();
    let report = Engine::run(g);
    // Permissive CPU budget: this test exercises the advise→apply loop
    // mechanics; the budget policy itself is unit-tested in spca-streams.
    // (On a single-core CI box every operator looks saturated and the
    // default budget would veto all fusion.)
    let policy = FusionPolicy {
        max_group_busy: 10.0,
        ..Default::default()
    };
    let groups = suggest_fusion(&report, &policy);
    assert!(!groups.is_empty(), "hot pipeline should yield advice");
    let hot = &groups[0];
    // The hottest group must involve the data path (source/split/engines).
    assert!(
        hot.ops.iter().any(|n| n == "split" || n == "source"),
        "unexpected advice {hot:?}"
    );

    // Apply: rebuild and fuse the advised ops by name.
    let (mut g2, _h2) = build();
    let ids: Vec<_> = g2
        .op_ids()
        .into_iter()
        .filter(|&id| hot.ops.iter().any(|n| n == g2.op_name(id)))
        .collect();
    g2.fuse(&ids);
    let report2 = Engine::run(g2);
    assert_eq!(report2.tuples_in_matching("pca-"), 3000);
    // Fusing removed at least one cross-PE link.
    assert!(report2.links.len() < report.links.len());
}

#[test]
fn snapshot_files_are_human_readable() {
    let dir = tmpdir("readable");
    let mut cfg = AppConfig::new(1, pca_cfg());
    cfg.snapshot_dir = Some(dir.clone());
    let (g, _h) = ParallelPcaApp::build(&cfg, source(500, 6));
    Engine::run(g);
    let content = std::fs::read_to_string(SnapshotWriter::latest_path(&dir, 0)).expect("written");
    assert!(content.starts_with("spca-eigensystem-v1"));
    assert!(content.contains("values"));
    assert!(content.contains("mean"));
    std::fs::remove_dir_all(dir).ok();
}
